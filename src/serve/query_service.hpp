#pragma once

// Micro-batched asynchronous query service — every query family the trees
// answer, served through one admission/batching/tuning pipeline.
//
// Clients submit heterogeneous requests (closest-hit, any-hit, packet-of-
// rays, range, k-nearest-neighbor, closest-point-within-radius) against
// named scenes in a SceneRegistry and get a std::future for the response. A
// dispatcher thread collects requests from lock-guarded, *bounded* per-family
// submission queues into homogeneous batches — a family flushes when its
// batch fills or its oldest request has waited its flush timeout — and hands
// each batch to the shared ThreadPool. Batching amortizes task dispatch and
// snapshot acquisition over many requests, which is where single-query
// serving throughput goes to die. Each family has its own batch-size/flush
// knobs (inheriting the global ones by default) because the families cost
// very different amounts per request — a range query over a fat box is
// orders of magnitude heavier than an any-hit ray — so the ServeTuner can
// optimize them independently.
//
// Contracts (tested in tests/test_serve_service.cpp):
//   * Admission control: submit() never blocks. A full queue rejects with
//     kRejectedOverflow; a shut-down service rejects with kShutdown; both as
//     immediately-ready futures.
//   * Exactly-once completion: every *accepted* request gets exactly one
//     response, even through drain/shutdown and hot swaps.
//   * Deadlines: a request whose deadline expired before execution completes
//     with kTimedOut instead of running.
//   * drain() returns once every accepted request has completed; shutdown()
//     additionally stops admission first and then the dispatcher (and is
//     what the destructor runs).
//
// The serving knobs (batch size, flush timeout, in-flight batch cap a.k.a.
// worker share) are mutable at runtime via set_serving_params() — that is
// the surface the ServeTuner drives with the paper's online tuning loop.

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/histogram.hpp"
#include "geom/aabb.hpp"
#include "geom/ray.hpp"
#include "kdtree/tree.hpp"
#include "serve/scene_registry.hpp"

namespace kdtune {

enum class QueryKind : int {
  kClosestHit = 0,
  kAnyHit = 1,
  kPacket = 2,
  kRange = 3,         ///< all triangles intersecting a box
  kNearest = 4,       ///< k nearest triangles to a point
  kClosestPoint = 5,  ///< closest point within a conservative radius
};
inline constexpr int kQueryKindCount = 6;
std::string_view to_string(QueryKind kind) noexcept;

enum class QueryStatus {
  kOk,
  kSceneNotFound,      ///< scene name unknown at execution time
  kRejectedOverflow,   ///< admission control: queue full at submit
  kTimedOut,           ///< deadline expired before execution
  kShutdown,           ///< submitted after shutdown began
  kRejectedQuota,      ///< admission control: tenant token bucket empty
  kError,              ///< query threw (never expected; the catch-all)
};
std::string_view to_string(QueryStatus status) noexcept;

struct QueryResponse {
  QueryStatus status = QueryStatus::kError;
  QueryKind kind = QueryKind::kClosestHit;
  std::uint64_t scene_version = 0;  ///< snapshot version that served it
  Hit hit{};                        ///< closest-hit result
  bool any = false;                 ///< any-hit result
  std::vector<Hit> hits;            ///< packet result, one per ray
  std::vector<std::uint32_t> range_ids;  ///< range result: sorted, deduped
  std::vector<NearestResult> neighbors;  ///< kNN result: ascending (d, id)
  NearestResult nearest{};               ///< closest-point result
  double latency_seconds = 0.0;     ///< submit-to-completion
};

/// Per-family overrides of the global batching knobs. Sentinel values mean
/// "inherit the global knob" — the default, so a service configured only
/// with the global ServingParams behaves exactly as before.
struct FamilyParams {
  std::int64_t batch_size = 0;         ///< 0 = inherit ServingParams value
  std::int64_t flush_timeout_us = -1;  ///< <0 = inherit ServingParams value
};

/// The tuner-driven serving knobs. All values clamp to sane minima on apply.
struct ServingParams {
  std::int64_t batch_size = 16;
  std::int64_t flush_timeout_us = 200;
  /// Cap on concurrently executing batches (the service's share of the pool);
  /// 0 means the pool's full concurrency.
  std::int64_t max_inflight_batches = 0;
  /// Per-family batch/flush overrides, indexed by QueryKind.
  std::array<FamilyParams, kQueryKindCount> family{};

  std::int64_t effective_batch(QueryKind kind) const noexcept {
    const std::int64_t f = family[static_cast<std::size_t>(kind)].batch_size;
    return f > 0 ? f : batch_size;
  }
  std::int64_t effective_flush_us(QueryKind kind) const noexcept {
    const std::int64_t f =
        family[static_cast<std::size_t>(kind)].flush_timeout_us;
    return f >= 0 ? f : flush_timeout_us;
  }
};

struct ServiceOptions {
  /// Admission bound: pending (undispatched) requests beyond this reject.
  std::size_t max_queue = 4096;
  ServingParams params{};
};

struct EndpointStats {
  std::uint64_t accepted = 0;
  std::uint64_t completed = 0;   ///< kOk responses
  /// Admission rejections by reason. `rejected` is their sum, kept so
  /// existing callers ("how many bounced?") don't have to care why.
  std::uint64_t rejected_overflow = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t rejected_quota = 0;   ///< quota rejects (router QoS layer)
  std::uint64_t rejected = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t not_found = 0;
  std::uint64_t failed = 0;
  std::uint64_t batches = 0;     ///< batches flushed for this family
  double p50_seconds = 0.0;
  double p99_seconds = 0.0;
  double mean_seconds = 0.0;
};

struct ServiceStats {
  std::uint64_t accepted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected_overflow = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t rejected_quota = 0;
  std::uint64_t rejected = 0;    ///< sum of the three reasons above
  std::uint64_t timed_out = 0;
  std::uint64_t not_found = 0;
  std::uint64_t failed = 0;
  std::uint64_t batches = 0;
  double mean_batch_occupancy = 0.0;
  std::uint64_t p50_batch_occupancy = 0;
  std::uint64_t swaps = 0;       ///< registry hot swaps observed so far
  double uptime_seconds = 0.0;
  double qps = 0.0;              ///< completed responses per uptime second
  std::array<EndpointStats, kQueryKindCount> endpoints{};
};

class QueryService {
 public:
  using Clock = std::chrono::steady_clock;

  QueryService(SceneRegistry& registry, ThreadPool& pool,
               ServiceOptions opts = {});
  ~QueryService();  ///< shutdown()

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  std::future<QueryResponse> submit_closest_hit(
      std::string scene, const Ray& ray,
      Clock::time_point deadline = Clock::time_point::max());
  std::future<QueryResponse> submit_any_hit(
      std::string scene, const Ray& ray,
      Clock::time_point deadline = Clock::time_point::max());
  std::future<QueryResponse> submit_packet(
      std::string scene, std::vector<Ray> rays,
      Clock::time_point deadline = Clock::time_point::max());
  /// Range query: all triangle ids intersecting `box` (sorted, deduped).
  std::future<QueryResponse> submit_range(
      std::string scene, const AABB& box,
      Clock::time_point deadline = Clock::time_point::max());
  /// k nearest triangles to `point`, optionally radius-limited.
  std::future<QueryResponse> submit_nearest(
      std::string scene, const Vec3& point, std::uint32_t k = 1,
      float max_distance = std::numeric_limits<float>::infinity(),
      Clock::time_point deadline = Clock::time_point::max());
  /// Closest point on the scene within a conservative caller-supplied
  /// radius (seeds the best-first search for aggressive pruning).
  std::future<QueryResponse> submit_closest_point(
      std::string scene, const Vec3& point, float max_distance,
      Clock::time_point deadline = Clock::time_point::max());

  /// Thread-safe; takes effect for the next batch decision.
  void set_serving_params(const ServingParams& params);
  ServingParams serving_params() const;

  /// Blocks until every accepted request has completed. Callers should stop
  /// submitting first (concurrent submits merely extend the wait).
  void drain();

  /// Stops admission, drains, and stops the dispatcher. Idempotent.
  void shutdown();

  bool accepting() const;
  unsigned concurrency() const noexcept { return pool_.concurrency(); }
  SceneRegistry& registry() const noexcept { return registry_; }

  ServiceStats stats() const;
  std::string stats_json() const;

 private:
  struct Request {
    QueryKind kind = QueryKind::kClosestHit;
    std::string scene;
    Ray ray{};
    std::vector<Ray> rays;
    AABB box{};     ///< kRange
    Vec3 point{};   ///< kNearest / kClosestPoint
    std::uint32_t k = 1;  ///< kNearest
    float max_distance = std::numeric_limits<float>::infinity();
    Clock::time_point deadline{};
    Clock::time_point submitted{};
    std::promise<QueryResponse> promise;
  };

  struct KindCounters {
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> rejected_overflow{0};
    std::atomic<std::uint64_t> rejected_shutdown{0};
    std::atomic<std::uint64_t> rejected_quota{0};
    std::atomic<std::uint64_t> timed_out{0};
    std::atomic<std::uint64_t> not_found{0};
    std::atomic<std::uint64_t> failed{0};
    std::atomic<std::uint64_t> batches{0};
  };

  std::future<QueryResponse> submit(Request req);
  void dispatcher_loop();
  void run_batch(std::vector<Request> batch);
  void execute(Request& req, QueryResponse& resp,
               std::vector<std::pair<std::string,
                                     std::shared_ptr<const SceneSnapshot>>>&
                   snapshots) const;

  SceneRegistry& registry_;
  ThreadPool& pool_;
  const std::size_t max_queue_;
  const Clock::time_point started_;

  mutable std::mutex mutex_;  ///< guards queues_, params_, flags, in-flight
  std::condition_variable dispatch_cv_;  ///< wakes the dispatcher
  std::condition_variable done_cv_;      ///< wakes drain() waiters
  /// One queue per family: batches are homogeneous, so each family flushes
  /// on its own batch-size/flush-timeout knobs. `pending_` is the total
  /// across all queues (admission control and drain look at the sum).
  std::array<std::deque<Request>, kQueryKindCount> queues_;
  std::size_t pending_ = 0;
  ServingParams params_;
  bool accepting_ = true;
  bool stop_ = false;
  int drain_waiters_ = 0;
  std::size_t inflight_requests_ = 0;
  std::size_t inflight_batches_ = 0;

  std::array<KindCounters, kQueryKindCount> counters_;
  std::array<LogHistogram, kQueryKindCount> latency_;  ///< nanoseconds
  LogHistogram batch_occupancy_;
  std::atomic<std::uint64_t> batches_{0};

  std::mutex shutdown_mutex_;  ///< serializes shutdown() callers
  std::thread dispatcher_;     ///< last member: starts in the ctor body
};

}  // namespace kdtune
