#pragma once

// Versioned scene registry — the serving layer's source of truth.
//
// Each named scene maps to an immutable SceneSnapshot: a built acceleration
// structure (KdTree re-emitted into the compact serving layout, a lazy tree,
// or the raw eager tree) plus the BuildConfig and version it was built with.
// Publication is RCU-style via shared_ptr: readers acquire() the current
// snapshot (a mutex-protected pointer copy — the only shared state touched),
// queries then run entirely on immutable data, and a writer publishing a new
// version swaps the pointer atomically. In-flight queries keep the snapshot
// they acquired; the old tree retires when its last reference drops. The full
// protocol is specified in docs/SERVING.md.
//
// The registry also closes the warm-start loop of the paper's online tuner:
// attach a ConfigCache and admit() seeds each build from the cached best
// BuildConfig for (scene, algorithm, pool width), while record_tuned() writes
// tuned results back for the next run.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "dse/config_db.hpp"
#include "kdtree/builder.hpp"
#include "kdtree/compact_tree.hpp"
#include "kdtree/query_backend.hpp"
#include "scene/scene.hpp"
#include "tuning/config_cache.hpp"

namespace kdtune {

/// One published tree version. Immutable after publication; hold the
/// shared_ptr for as long as queries need the tree.
struct SceneSnapshot {
  std::string scene;
  std::uint64_t version = 0;      ///< 1 on admit, +1 per publish
  std::shared_ptr<const KdTreeBase> tree;
  BuildConfig config{};
  Algorithm algorithm = Algorithm::kInPlace;
  /// "compact", "wide4", "wide8", "bvh", "kdtree", or "lazy"
  std::string layout;
  /// The serving backend `tree` implements (meaningful when the layout is a
  /// serving layout; lazy/kdtree snapshots report kCompact).
  QueryBackend backend = QueryBackend::kCompact;
  /// The compact source tree, retained whenever one was emitted — this is
  /// what makes set_backend() an O(collapse) layout switch instead of a full
  /// rebuild. Null for lazy / non-compacted snapshots.
  std::shared_ptr<const CompactKdTree> compact;
  double build_seconds = 0.0;
  std::size_t triangle_count = 0;
};

struct AdmitOptions {
  Algorithm algorithm = Algorithm::kInPlace;
  /// Build configuration; unset falls back to the attached ConfigCache's
  /// entry for (scene, algorithm, pool width), then to kBaseConfig.
  std::optional<BuildConfig> config{};
  /// Re-emit eager builds into the CompactKdTree serving layout. Ignored for
  /// the lazy algorithm (lazy trees expand in place and stay as built).
  bool compact = true;
  /// Serving layout for ray queries: the binary compact tree, a wide
  /// collapse of it, or a BVH. Requires `compact` (non-compacted snapshots
  /// serve the builder layout and ignore this). Tunable online via
  /// set_backend() — ServeTuner/FrameTuner drive it per scene.
  QueryBackend backend = QueryBackend::kCompact;
};

class SceneRegistry {
 public:
  explicit SceneRegistry(ThreadPool& pool) : pool_(pool) {}

  SceneRegistry(const SceneRegistry&) = delete;
  SceneRegistry& operator=(const SceneRegistry&) = delete;

  /// Warm-start cache, not owned; pass nullptr to detach. The registry
  /// serializes its own cache accesses, but the cache must not be mutated
  /// concurrently by others while attached.
  void attach_cache(ConfigCache* cache);

  /// Cross-scene configuration database (docs/EXPLORE.md), not owned; same
  /// ownership rules as attach_cache. admit() consults it after the cache:
  /// an exact feature/hardware hit reuses the stored configuration
  /// directly, a near miss seeds the build with the neighbor's parameters
  /// (the online tuner keeps refining), a far miss changes nothing.
  /// record_tuned() writes measured winners back (keeps-if-faster).
  void attach_database(ConfigDatabase* db);

  /// Builds and publishes version 1 of `name` (or the next version if the
  /// name already exists — re-admission is a hot swap that also replaces the
  /// stored geometry). Blocks for the build; the publication itself is O(1).
  std::shared_ptr<const SceneSnapshot> admit(const std::string& name,
                                             Scene scene,
                                             const AdmitOptions& opts = {});

  /// Current snapshot, or nullptr if the name is unknown. O(1); safe from
  /// any thread, any number of times.
  std::shared_ptr<const SceneSnapshot> acquire(const std::string& name) const;

  /// Rebuilds `name` (new config and/or new geometry; unset keeps the stored
  /// one) and publishes the result as the next version. Typically called
  /// from a background thread while readers keep serving the old snapshot.
  /// Returns nullptr if the name is unknown.
  std::shared_ptr<const SceneSnapshot> rebuild(
      const std::string& name, std::optional<BuildConfig> config = {},
      std::optional<Scene> geometry = {});

  /// A built-but-unpublished snapshot: the double-buffer half of the dynamic
  /// FramePipeline's protocol (build frame N+1 while frame N serves, swap at
  /// the frame boundary). Produced by stage(), installed by publish_staged().
  struct StagedSnapshot {
    std::shared_ptr<SceneSnapshot> snapshot;
    Scene scene;  ///< geometry stored on publish (shared-storage copy, O(1))
    bool valid() const noexcept { return snapshot != nullptr; }
  };

  /// Builds a snapshot of `scene` for the admitted name without publishing
  /// it. The build runs on the calling thread (parallelized over the
  /// registry's pool); the registry lock is held only to read the entry's
  /// options, so readers and other writers are never blocked by the build.
  /// `config`/`algorithm` unset keep the entry's current ones. Returns an
  /// invalid StagedSnapshot when `name` is unknown.
  StagedSnapshot stage(const std::string& name, Scene scene,
                       std::optional<BuildConfig> config = {},
                       std::optional<Algorithm> algorithm = {},
                       std::optional<QueryBackend> backend = {});

  /// Publishes a staged build as the next version of its scene — O(1), just
  /// the RCU pointer swap plus the geometry handoff. Returns the published
  /// snapshot, or nullptr if the scene was removed since stage() (the staged
  /// tree then simply retires unpublished).
  std::shared_ptr<const SceneSnapshot> publish_staged(StagedSnapshot staged);

  /// Records a tuned configuration for `name`: future rebuilds default to it
  /// and, when a cache is attached, it is stored under the scene's key (kept
  /// only if faster — ConfigCache semantics). `algorithm` set switches the
  /// entry's builder too (cache key included) — the FrameTuner's selection
  /// phase may conclude with a different winner than the entry's current
  /// algorithm. Returns false for unknown names.
  bool record_tuned(const std::string& name, const BuildConfig& config,
                    double seconds, std::optional<Algorithm> algorithm = {});

  /// Switches `name`'s serving backend without rebuilding the kd-tree: the
  /// retained compact source is re-emitted into the requested layout (or a
  /// BVH is built over the same triangles) and published as the next
  /// version. Returns the published snapshot; the current one unchanged if
  /// it already serves `backend`; nullptr if the name is unknown or the
  /// snapshot retains no compact source (lazy / non-compacted scenes cannot
  /// switch). This is the cheap hot path the serving tuners drive per
  /// measurement window.
  std::shared_ptr<const SceneSnapshot> set_backend(const std::string& name,
                                                   QueryBackend backend);

  bool remove(const std::string& name);
  std::vector<std::string> names() const;
  std::size_t size() const;

  /// Number of publications that *replaced* a live snapshot (hot swaps).
  std::uint64_t swap_count() const noexcept {
    return swaps_.load(std::memory_order_relaxed);
  }

  ThreadPool& pool() const noexcept { return pool_; }

  /// ConfigCache value layout for BuildConfig: [CI, CB, S] (+ [R] for lazy).
  static BuildConfig config_from_values(
      const std::vector<std::int64_t>& values);
  static std::vector<std::int64_t> values_of(const BuildConfig& config,
                                             Algorithm algorithm);
  /// ConfigDatabase named-parameter layout for BuildConfig: "ci", "cb",
  /// "s", "r" applied over kBaseConfig; unknown names are ignored.
  static BuildConfig config_from_named(
      const std::vector<std::pair<std::string, std::int64_t>>& params);

 private:
  struct Entry {
    Scene scene;
    AdmitOptions opts;
    std::shared_ptr<const SceneSnapshot> current;
    /// Extracted on admit when a database is attached (geometry refreshes
    /// on re-admit / rebuild-with-geometry; staged frame updates keep the
    /// admitted features — per-frame extraction would tax the hot path).
    std::optional<SceneFeatures> features;
  };

  std::string cache_key(const std::string& name, Algorithm algorithm,
                        QueryBackend backend) const;
  std::string legacy_cache_key(const std::string& name,
                               Algorithm algorithm) const;
  std::shared_ptr<SceneSnapshot> build_snapshot(
      const std::string& name, const Scene& scene, const AdmitOptions& opts,
      const BuildConfig& config) const;

  ThreadPool& pool_;
  mutable std::mutex mutex_;  ///< guards entries_, cache_, and db_ access
  std::map<std::string, Entry> entries_;
  ConfigCache* cache_ = nullptr;
  ConfigDatabase* db_ = nullptr;
  std::atomic<std::uint64_t> swaps_{0};
};

}  // namespace kdtune
