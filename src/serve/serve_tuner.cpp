#include "serve/serve_tuner.hpp"

#include <algorithm>
#include <bit>

#include "obs/trace.hpp"

namespace kdtune {

namespace {

std::uint64_t completed_of(const QueryService& service) {
  return service.stats().completed;
}

std::int64_t floor_pow2(std::int64_t v) {
  return std::int64_t{1} << (std::bit_width(static_cast<std::uint64_t>(
                                 std::max<std::int64_t>(v, 1))) -
                             1);
}

}  // namespace

ServeTuner::ServeTuner(QueryService& service, ServeTunerOptions opts)
    : service_(service), opts_(opts), tuner_(nullptr, opts.tuner) {
  trial_ = service_.serving_params();

  const std::int64_t batch_min = floor_pow2(std::max<std::int64_t>(
      1, opts_.batch_min));
  const std::int64_t batch_max =
      std::max(batch_min, floor_pow2(opts_.batch_max));
  tuner_.register_parameter_pow2(&trial_.batch_size, batch_min, batch_max,
                                 "batch_size");
  if (opts_.tune_flush) {
    tuner_.register_parameter(&trial_.flush_timeout_us, opts_.flush_min_us,
                              opts_.flush_max_us,
                              std::max<std::int64_t>(1, opts_.flush_step_us),
                              "flush_timeout_us");
  }
  if (opts_.tune_workers) {
    tuner_.register_parameter(&trial_.max_inflight_batches, 1,
                              static_cast<std::int64_t>(service_.concurrency()),
                              1, "max_inflight_batches");
  }
  // Per-family dimensions ride between the worker cap and the backend: the
  // backend must stay the LAST registered dimension (best_backend() reads
  // values.back()).
  for (const QueryKind kind : opts_.tune_families) {
    FamilyParams& fam = trial_.family[static_cast<std::size_t>(kind)];
    // Seed the trial with the global knobs so the family starts from a
    // concrete (non-inherit) point on its grid.
    fam.batch_size = std::clamp(floor_pow2(trial_.batch_size), batch_min,
                                batch_max);
    const std::string prefix{to_string(kind)};
    tuner_.register_parameter_pow2(&fam.batch_size, batch_min, batch_max,
                                   prefix + ".batch_size");
    if (opts_.tune_flush) {
      fam.flush_timeout_us = std::clamp(trial_.flush_timeout_us,
                                        opts_.flush_min_us, opts_.flush_max_us);
      tuner_.register_parameter(&fam.flush_timeout_us, opts_.flush_min_us,
                                opts_.flush_max_us,
                                std::max<std::int64_t>(1, opts_.flush_step_us),
                                prefix + ".flush_timeout_us");
    }
  }
  // Extra caller-owned dimensions (e.g. the shard router's shard_count /
  // fanout_cap). Storage is sized once up front so the registered pointers
  // stay stable; like the families they sit before the backend dimension.
  extra_values_.resize(opts_.extra_dimensions.size());
  for (std::size_t i = 0; i < opts_.extra_dimensions.size(); ++i) {
    const ServeTunerExtraDimension& dim = opts_.extra_dimensions[i];
    if (dim.pow2) {
      const std::int64_t lo = floor_pow2(std::max<std::int64_t>(1, dim.min));
      const std::int64_t hi =
          std::max(lo, floor_pow2(std::max<std::int64_t>(1, dim.max)));
      extra_values_[i] = lo;
      tuner_.register_parameter_pow2(&extra_values_[i], lo, hi, dim.name);
    } else {
      const std::int64_t lo = std::min(dim.min, dim.max);
      const std::int64_t hi = std::max(dim.min, dim.max);
      extra_values_[i] = lo;
      tuner_.register_parameter(&extra_values_[i], lo, hi,
                                std::max<std::int64_t>(1, dim.step), dim.name);
    }
  }
  if (opts_.tune_backend) {
    tuner_.register_parameter(&trial_backend_, 0, kQueryBackendCount - 1, 1,
                              std::string(kQueryBackendParam));
  }
}

std::size_t ServeTuner::warm_start_named(
    const std::vector<std::pair<std::string, std::int64_t>>& params) {
  const std::vector<TunableParameter>& dims = tuner_.parameters();
  // Unmatched dimensions seed at their current values, so a partial entry
  // (say, from a sweep that never varied the flush timeout) still yields a
  // complete warm-start point.
  std::vector<std::int64_t> values;
  values.reserve(dims.size());
  for (const TunableParameter& dim : dims) values.push_back(dim.current());
  std::size_t seeded = 0;
  for (const auto& [name, value] : params) {
    for (std::size_t d = 0; d < dims.size(); ++d) {
      if (dims[d].name() == name) {
        values[d] = value;
        ++seeded;
        break;
      }
    }
  }
  if (seeded != 0) tuner_.warm_start(values);
  return seeded;
}

void ServeTuner::begin_window() {
  if (window_open_) return;
  // record() auto-applies the next proposal into trial_, so only the very
  // first window needs an explicit apply (mirrors Tuner::start()).
  if (!applied_once_) {
    tuner_.apply_next();
    applied_once_ = true;
  }
  if (opts_.apply_params) {
    opts_.apply_params(trial_);
  } else {
    service_.set_serving_params(trial_);
  }
  for (std::size_t i = 0; i < opts_.extra_dimensions.size(); ++i) {
    if (opts_.extra_dimensions[i].apply) {
      opts_.extra_dimensions[i].apply(extra_values_[i]);
    }
  }
  if (opts_.tune_backend) {
    const QueryBackend backend = backend_from_int(trial_backend_);
    const std::vector<std::string> scenes = opts_.backend_scenes.empty()
                                                ? service_.registry().names()
                                                : opts_.backend_scenes;
    for (const std::string& scene : scenes) {
      // Unknown / non-switchable scenes return nullptr and are skipped; the
      // window still measures whatever the service actually serves.
      (void)service_.registry().set_backend(scene, backend);
    }
  }
  window_start_completed_ =
      opts_.completed_counter ? opts_.completed_counter()
                              : completed_of(service_);
  trace_instant("serve.window_begin", "tuner");
  clock_.start();
  window_open_ = true;
}

double ServeTuner::end_window() {
  if (!window_open_) return 0.0;
  window_open_ = false;
  ++windows_;
  const double elapsed = clock_.elapsed();
  const std::uint64_t now_completed =
      opts_.completed_counter ? opts_.completed_counter()
                              : completed_of(service_);
  const std::uint64_t completed = now_completed - window_start_completed_;
  if (completed == 0) {
    // No completions at all (e.g. a zero-traffic window): report a large
    // finite cost so the search moves away from configurations that starve
    // the service, without feeding it NaN/Inf.
    tuner_.record(std::max(elapsed, 1e-6) * 1e3);
    return 0.0;
  }
  tuner_.record(elapsed / static_cast<double>(completed));
  const double throughput =
      static_cast<double>(completed) / std::max(elapsed, 1e-12);
  trace_counter("serve.window_qps", throughput, "tuner");
  return throughput;
}

ServingParams ServeTuner::params_from_values(
    const std::vector<std::int64_t>& values) const {
  ServingParams p = trial_;
  std::size_t i = 0;
  p.batch_size = values[i++];
  if (opts_.tune_flush) p.flush_timeout_us = values[i++];
  if (opts_.tune_workers) p.max_inflight_batches = values[i++];
  for (const QueryKind kind : opts_.tune_families) {
    FamilyParams& fam = p.family[static_cast<std::size_t>(kind)];
    fam.batch_size = values[i++];
    if (opts_.tune_flush) fam.flush_timeout_us = values[i++];
  }
  return p;
}

ServingParams ServeTuner::best() const {
  return params_from_values(tuner_.best_values());
}

std::vector<std::int64_t> ServeTuner::best_extras() const {
  std::vector<std::int64_t> out;
  if (opts_.extra_dimensions.empty()) return out;
  const std::vector<std::int64_t> values = tuner_.best_values();
  std::size_t i = 1;  // batch_size
  if (opts_.tune_flush) ++i;
  if (opts_.tune_workers) ++i;
  i += opts_.tune_families.size() * (opts_.tune_flush ? 2u : 1u);
  out.assign(values.begin() + static_cast<std::ptrdiff_t>(i),
             values.begin() +
                 static_cast<std::ptrdiff_t>(i + opts_.extra_dimensions.size()));
  return out;
}

QueryBackend ServeTuner::best_backend() const {
  if (!opts_.tune_backend) return QueryBackend::kCompact;
  // The backend is always the last registered dimension.
  const std::vector<std::int64_t> values = tuner_.best_values();
  return backend_from_int(values.back());
}

}  // namespace kdtune
