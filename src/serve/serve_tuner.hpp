#pragma once

// ServeTuner — the paper's online tuning loop pointed at a *serving* workload
// instead of a build. The knobs are QueryService's live parameters (batch
// size on a power-of-two grid, flush timeout, in-flight batch cap a.k.a.
// worker share); the measurement is a wall-clock window of real service
// traffic, costed as seconds-per-completed-request (inverse throughput), so
// the same Nelder-Mead search that minimizes frame time minimizes serving
// latency-per-request here. Karcher & Tichy's concurrency-library autotuning
// is the precedent: batch size and worker count are exactly the knobs whose
// optimum depends on machine, load mix, and scene.
//
//   ServeTuner tuner(service);
//   while (serving) {
//     tuner.begin_window();     // applies the trial params to the service
//     ... live traffic for ~100ms ...
//     tuner.end_window();       // costs the window, proposes the next trial
//   }
//
// Like the build tuner, the search keeps monitoring after convergence and
// re-opens when throughput drifts (load mix change, hot swap to a heavier
// scene) — the paper's online re-tune path, exercised on a non-build
// workload.

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "kdtree/query_backend.hpp"
#include "serve/query_service.hpp"
#include "tuning/measurement.hpp"
#include "tuning/tuner.hpp"

namespace kdtune {

/// A caller-owned integer knob searched alongside the serving parameters —
/// how non-QueryService layers (e.g. the shard router's shard_count and
/// fanout cap) join the same Nelder-Mead search. `apply` is invoked at every
/// begin_window() with the trial value, before measurement starts.
struct ServeTunerExtraDimension {
  std::string name;
  std::int64_t min = 1;
  std::int64_t max = 1;
  std::int64_t step = 1;
  bool pow2 = false;  ///< search on a power-of-two grid (min/max rounded)
  std::function<void(std::int64_t)> apply;
};

struct ServeTunerOptions {
  /// Batch size grid {batch_min, 2*batch_min, ..., batch_max} (powers of 2).
  std::int64_t batch_min = 1;
  std::int64_t batch_max = 256;
  /// Flush-timeout grid [flush_min_us, flush_max_us] step flush_step_us.
  bool tune_flush = true;
  std::int64_t flush_min_us = 0;
  std::int64_t flush_max_us = 1000;
  std::int64_t flush_step_us = 125;
  /// Tune the in-flight batch cap over [1, pool concurrency].
  bool tune_workers = true;
  /// Per-family batch-size/flush knobs: each listed family gets its own
  /// pow2 batch dimension (same grid as the global batch) and, when
  /// tune_flush is set, its own flush-timeout dimension — named e.g.
  /// "range.batch_size" / "range.flush_timeout_us" in the tuner log. The
  /// global knobs keep serving the unlisted families. Useful because the
  /// families cost wildly different amounts per request (a fat range box
  /// vs. an any-hit ray), so their optimal batching differs.
  std::vector<QueryKind> tune_families{};
  /// Tune the serving query backend (compact / wide4 / wide8 / bvh) as one
  /// more dimension of the same search: each window's trial backend is
  /// applied to `backend_scenes` via SceneRegistry::set_backend before
  /// measurement. Scenes that cannot switch (lazy, non-compacted) are
  /// skipped. Empty `backend_scenes` with tune_backend set applies the trial
  /// to every admitted scene.
  bool tune_backend = false;
  std::vector<std::string> backend_scenes{};
  /// Extra caller-owned dimensions, registered after the per-family knobs
  /// (and before the backend dimension, which stays last).
  std::vector<ServeTunerExtraDimension> extra_dimensions{};
  /// Overrides the progress metric (default: the service's completed count).
  /// A router fronting many shard services sums its own counter here.
  std::function<std::uint64_t()> completed_counter{};
  /// Overrides where trial ServingParams are applied (default: the service
  /// passed to the constructor). A router fans them to every shard.
  std::function<void(const ServingParams&)> apply_params{};
  TunerOptions tuner{};
};

class ServeTuner {
 public:
  explicit ServeTuner(QueryService& service, ServeTunerOptions opts = {});

  ServeTuner(const ServeTuner&) = delete;
  ServeTuner& operator=(const ServeTuner&) = delete;

  /// Seeds the search from named parameter values (e.g. a ConfigDatabase
  /// "serve" entry's params): each name matching a registered dimension
  /// ("batch_size", "flush_timeout_us", "range.batch_size", extra-dimension
  /// names, "query_backend"...) is seeded at its stored value; unmatched
  /// dimensions keep their current values. Call before the first
  /// begin_window(). Returns the number of dimensions seeded.
  std::size_t warm_start_named(
      const std::vector<std::pair<std::string, std::int64_t>>& params);

  /// Applies the next trial parameters to the service and starts measuring.
  void begin_window();

  /// Ends the window: costs it as elapsed-seconds / completed-requests and
  /// reports to the search. Returns the window's completed-request
  /// throughput (requests/second). A window with zero completions records a
  /// large finite cost so the search backs away without poisoning itself.
  double end_window();

  bool window_open() const noexcept { return window_open_; }
  std::size_t windows() const noexcept { return windows_; }

  /// Parameters currently applied to the service (the trial under test).
  ServingParams current() const noexcept { return trial_; }
  /// Best parameters found so far.
  ServingParams best() const;

  /// The query backend under test / the best found so far. Meaningful only
  /// with tune_backend; otherwise both report kCompact.
  QueryBackend current_backend() const noexcept {
    return backend_from_int(trial_backend_);
  }
  QueryBackend best_backend() const;

  /// Trial / best values of the registered extra dimensions, in registration
  /// order. Empty when no extra dimensions were configured.
  const std::vector<std::int64_t>& current_extras() const noexcept {
    return extra_values_;
  }
  std::vector<std::int64_t> best_extras() const;

  const Tuner& tuner() const noexcept { return tuner_; }
  Tuner& tuner() noexcept { return tuner_; }

 private:
  ServingParams params_from_values(
      const std::vector<std::int64_t>& values) const;

  QueryService& service_;
  ServeTunerOptions opts_;
  ServingParams trial_;  ///< tuner-owned parameter storage
  /// Storage for extra dimensions; sized once in the constructor so the
  /// registered pointers stay stable.
  std::vector<std::int64_t> extra_values_;
  std::int64_t trial_backend_ = 0;  ///< QueryBackend under test (tune_backend)
  Tuner tuner_;
  bool applied_once_ = false;
  bool window_open_ = false;
  std::uint64_t window_start_completed_ = 0;
  Stopwatch clock_;
  std::size_t windows_ = 0;
};

}  // namespace kdtune
