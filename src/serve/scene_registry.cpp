#include "serve/scene_registry.hpp"

#include <stdexcept>
#include <utility>

#include "bvh/bvh.hpp"
#include "kdtree/compact_tree.hpp"
#include "kdtree/wide_tree.hpp"
#include "obs/trace.hpp"
#include "tuning/measurement.hpp"

namespace kdtune {

namespace {

/// Emits the serving tree for `backend` over a shared compact source. The
/// BVH backend rebuilds from the same triangles (it is a different
/// structure, not a re-layout), which is still cheap next to the SAH
/// kd-tree build.
std::shared_ptr<const KdTreeBase> emit_backend(
    const std::shared_ptr<const CompactKdTree>& compact, QueryBackend backend,
    ThreadPool& pool) {
  switch (backend) {
    case QueryBackend::kWide4:
    case QueryBackend::kWide8:
      return std::shared_ptr<const KdTreeBase>(
          make_wide_tree(compact, backend));
    case QueryBackend::kBvh:
      return std::shared_ptr<const KdTreeBase>(
          build_bvh(compact->triangles(), BvhConfig{}, pool));
    case QueryBackend::kCompact:
      break;
  }
  return compact;
}

/// The backend name a ConfigDatabase entry for these options carries.
/// Lazy / non-compacted scenes serve the builder's own layout, which the
/// explorer records as "native"; everything else serves `opts.backend`.
std::string db_backend_name(const AdmitOptions& opts) {
  if (opts.algorithm == Algorithm::kLazy || !opts.compact) return "native";
  return to_string(opts.backend);
}

}  // namespace

void SceneRegistry::attach_cache(ConfigCache* cache) {
  std::lock_guard<std::mutex> lk(mutex_);
  cache_ = cache;
}

void SceneRegistry::attach_database(ConfigDatabase* db) {
  std::lock_guard<std::mutex> lk(mutex_);
  db_ = db;
}

BuildConfig SceneRegistry::config_from_values(
    const std::vector<std::int64_t>& values) {
  if (values.size() < 3) {
    throw std::invalid_argument(
        "SceneRegistry::config_from_values: need at least [CI, CB, S]");
  }
  BuildConfig c;
  c.ci = values[0];
  c.cb = values[1];
  c.s = values[2];
  if (values.size() > 3) c.r = values[3];
  return c;
}

std::vector<std::int64_t> SceneRegistry::values_of(const BuildConfig& config,
                                                   Algorithm algorithm) {
  std::vector<std::int64_t> values{config.ci, config.cb, config.s};
  if (algorithm == Algorithm::kLazy) values.push_back(config.r);
  return values;
}

BuildConfig SceneRegistry::config_from_named(
    const std::vector<std::pair<std::string, std::int64_t>>& params) {
  BuildConfig c = kBaseConfig;
  for (const auto& [name, value] : params) {
    if (name == "ci") c.ci = value;
    if (name == "cb") c.cb = value;
    if (name == "s") c.s = value;
    if (name == "r") c.r = value;
  }
  return c;
}

std::string SceneRegistry::cache_key(const std::string& name,
                                     Algorithm algorithm,
                                     QueryBackend backend) const {
  return ConfigCache::key_for(
      name, std::string(to_string(algorithm)), pool_.concurrency(),
      to_string(backend),
      HardwareDescriptor::detect(pool_.concurrency()).suffix());
}

std::string SceneRegistry::legacy_cache_key(const std::string& name,
                                            Algorithm algorithm) const {
  return ConfigCache::key_for(name, std::string(to_string(algorithm)),
                              pool_.concurrency());
}

std::shared_ptr<SceneSnapshot> SceneRegistry::build_snapshot(
    const std::string& name, const Scene& scene, const AdmitOptions& opts,
    const BuildConfig& config) const {
  TraceSpan span("registry.build", "serve");
  Stopwatch clock;
  clock.start();
  std::unique_ptr<KdTreeBase> built =
      make_builder(opts.algorithm)->build(scene.triangles(), config, pool_);

  auto snapshot = std::make_shared<SceneSnapshot>();
  snapshot->scene = name;
  snapshot->config = config;
  snapshot->algorithm = opts.algorithm;
  snapshot->triangle_count = scene.triangle_count();
  snapshot->layout = opts.algorithm == Algorithm::kLazy ? "lazy" : "kdtree";
  if (opts.compact && opts.algorithm != Algorithm::kLazy) {
    if (const auto* eager = dynamic_cast<const KdTree*>(built.get())) {
      // The compact tree is retained even when another backend serves — it
      // is the shared source wide layouts collapse from, and what lets
      // set_backend() switch layouts without a rebuild.
      snapshot->compact = std::make_shared<const CompactKdTree>(*eager);
      snapshot->backend = opts.backend;
      snapshot->tree = emit_backend(snapshot->compact, opts.backend, pool_);
      snapshot->layout = to_string(opts.backend);
    }
  }
  if (!snapshot->tree) {
    snapshot->tree = std::shared_ptr<const KdTreeBase>(std::move(built));
  }
  snapshot->build_seconds = clock.elapsed();
  return snapshot;
}

std::shared_ptr<const SceneSnapshot> SceneRegistry::admit(
    const std::string& name, Scene scene, const AdmitOptions& opts) {
  bool want_features = false;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    want_features = db_ != nullptr;
  }
  // Feature extraction is O(triangles); keep it off the registry lock like
  // the build itself.
  std::optional<SceneFeatures> features;
  if (want_features) features = SceneFeatures::extract(scene.triangles());

  // Configuration priority: explicit > this scene's cached best (canonical
  // key, then pre-backend legacy key) > the database's nearest measured
  // context > the paper's C_base.
  BuildConfig config;
  if (opts.config) {
    config = *opts.config;
  } else {
    config = kBaseConfig;
    std::lock_guard<std::mutex> lk(mutex_);
    bool found = false;
    if (cache_ != nullptr) {
      if (const auto hit = cache_->lookup_compat(
              cache_key(name, opts.algorithm, opts.backend),
              legacy_cache_key(name, opts.algorithm))) {
        config = config_from_values(hit->values);
        found = true;
      }
    }
    if (!found && db_ != nullptr && features) {
      const auto match =
          db_->nearest("build", *features,
                       HardwareDescriptor::detect(pool_.concurrency()),
                       std::string(to_string(opts.algorithm)),
                       db_backend_name(opts));
      if (match.entry != nullptr &&
          match.kind != ConfigDatabase::MatchKind::kFar) {
        config = config_from_named(match.entry->params);
      }
    }
  }

  // The (potentially long) build runs without the registry lock; only the
  // publication below serializes with readers and other writers.
  auto snapshot = build_snapshot(name, scene, opts, config);

  std::lock_guard<std::mutex> lk(mutex_);
  Entry& entry = entries_[name];
  const bool replacing = entry.current != nullptr;
  snapshot->version = replacing ? entry.current->version + 1 : 1;
  entry.scene = std::move(scene);
  entry.opts = opts;
  entry.opts.config = config;
  entry.current = snapshot;
  entry.features = std::move(features);
  if (replacing) swaps_.fetch_add(1, std::memory_order_relaxed);
  return snapshot;
}

std::shared_ptr<const SceneSnapshot> SceneRegistry::acquire(
    const std::string& name) const {
  std::lock_guard<std::mutex> lk(mutex_);
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.current;
}

std::shared_ptr<const SceneSnapshot> SceneRegistry::rebuild(
    const std::string& name, std::optional<BuildConfig> config,
    std::optional<Scene> geometry) {
  Scene scene;
  AdmitOptions opts;
  bool want_features = false;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    const auto it = entries_.find(name);
    if (it == entries_.end()) return nullptr;
    scene = geometry ? std::move(*geometry) : it->second.scene;
    opts = it->second.opts;
    if (config) opts.config = *config;
    want_features = db_ != nullptr && geometry.has_value();
  }
  const BuildConfig build_config = opts.config.value_or(kBaseConfig);
  auto snapshot = build_snapshot(name, scene, opts, build_config);
  std::optional<SceneFeatures> features;
  if (want_features) features = SceneFeatures::extract(scene.triangles());

  std::lock_guard<std::mutex> lk(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) return nullptr;  // removed while building
  snapshot->version = it->second.current->version + 1;
  if (geometry) it->second.scene = std::move(scene);
  if (features) it->second.features = std::move(features);
  it->second.opts = opts;
  it->second.current = snapshot;
  swaps_.fetch_add(1, std::memory_order_relaxed);
  return snapshot;
}

SceneRegistry::StagedSnapshot SceneRegistry::stage(
    const std::string& name, Scene scene, std::optional<BuildConfig> config,
    std::optional<Algorithm> algorithm, std::optional<QueryBackend> backend) {
  AdmitOptions opts;
  BuildConfig build_config;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    const auto it = entries_.find(name);
    if (it == entries_.end()) return {};
    opts = it->second.opts;
    if (algorithm) opts.algorithm = *algorithm;
    if (backend) opts.backend = *backend;
    build_config = config ? *config : opts.config.value_or(kBaseConfig);
  }
  StagedSnapshot staged;
  staged.snapshot = build_snapshot(name, scene, opts, build_config);
  staged.scene = std::move(scene);
  return staged;
}

std::shared_ptr<const SceneSnapshot> SceneRegistry::publish_staged(
    StagedSnapshot staged) {
  if (!staged.valid()) return nullptr;
  std::lock_guard<std::mutex> lk(mutex_);
  const auto it = entries_.find(staged.snapshot->scene);
  if (it == entries_.end()) return nullptr;  // removed while staged
  staged.snapshot->version = it->second.current->version + 1;
  it->second.scene = std::move(staged.scene);
  it->second.opts.algorithm = staged.snapshot->algorithm;
  it->second.opts.config = staged.snapshot->config;
  if (staged.snapshot->compact != nullptr) {
    it->second.opts.backend = staged.snapshot->backend;
  }
  it->second.current = staged.snapshot;
  swaps_.fetch_add(1, std::memory_order_relaxed);
  trace_instant("registry.publish", "serve");
  return staged.snapshot;
}

std::shared_ptr<const SceneSnapshot> SceneRegistry::set_backend(
    const std::string& name, QueryBackend backend) {
  std::shared_ptr<const SceneSnapshot> current;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    const auto it = entries_.find(name);
    if (it == entries_.end()) return nullptr;
    current = it->second.current;
  }
  if (current == nullptr || current->compact == nullptr) return nullptr;
  if (current->backend == backend) return current;

  // The layout emission runs without the registry lock, like every build.
  Stopwatch clock;
  clock.start();
  auto snapshot = std::make_shared<SceneSnapshot>(*current);
  snapshot->backend = backend;
  snapshot->tree = emit_backend(current->compact, backend, pool_);
  snapshot->layout = to_string(backend);
  snapshot->build_seconds = clock.elapsed();

  std::lock_guard<std::mutex> lk(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) return nullptr;  // removed while emitting
  snapshot->version = it->second.current->version + 1;
  it->second.opts.backend = backend;
  it->second.current = snapshot;
  swaps_.fetch_add(1, std::memory_order_relaxed);
  trace_instant("registry.backend_switch", "serve");
  return snapshot;
}

bool SceneRegistry::record_tuned(const std::string& name,
                                 const BuildConfig& config, double seconds,
                                 std::optional<Algorithm> algorithm) {
  std::lock_guard<std::mutex> lk(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) return false;
  it->second.opts.config = config;
  if (algorithm) it->second.opts.algorithm = *algorithm;
  const AdmitOptions& opts = it->second.opts;
  if (cache_ != nullptr) {
    cache_->store(cache_key(name, opts.algorithm, opts.backend),
                  values_of(config, opts.algorithm), seconds);
  }
  if (db_ != nullptr) {
    if (!it->second.features) {
      // Database attached after admit: extract now (once; record_tuned
      // fires per tuner convergence, not per query).
      it->second.features =
          SceneFeatures::extract(it->second.scene.triangles());
    }
    ConfigDatabase::Entry entry;
    entry.workload = "build";
    entry.scene = name;
    entry.builder = to_string(opts.algorithm);
    entry.backend = db_backend_name(opts);
    entry.hw = HardwareDescriptor::detect(pool_.concurrency());
    entry.features = *it->second.features;
    entry.params = {{"ci", config.ci}, {"cb", config.cb}, {"s", config.s}};
    if (opts.algorithm == Algorithm::kLazy) {
      entry.params.emplace_back("r", config.r);
    }
    entry.seconds = seconds;
    db_->store(std::move(entry));
  }
  return true;
}

bool SceneRegistry::remove(const std::string& name) {
  std::lock_guard<std::mutex> lk(mutex_);
  return entries_.erase(name) != 0;
}

std::vector<std::string> SceneRegistry::names() const {
  std::lock_guard<std::mutex> lk(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

std::size_t SceneRegistry::size() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return entries_.size();
}

}  // namespace kdtune
