#pragma once

// Offline design-space explorer (docs/EXPLORE.md). Sweeps a coarse grid over
// the paper's Table II parameter space crossed with every builder, every
// serving query backend, and the serving-layer knobs (batch size, flush
// timeout, a per-family override, shard count, fanout cap) across the
// generator scene classes, and distills the measurements into a
// ConfigDatabase the online tuners warm-start from.
//
// The sweep is resumable: every measured cell appends its key to a progress
// file and checkpoints the database, so an interrupted run picks up where it
// left off instead of repeating days of measurement. Cell keys carry the
// thread count and detail scale — changing either re-measures rather than
// trusting stale cells.

#include <cstdint>
#include <string>
#include <vector>

#include "dse/config_db.hpp"

namespace kdtune {

class TunerLog;

/// The swept axes. Build cells are the cross product
/// builders x ci x cb x s x backends (r replaces the backend axis meaning
/// for the lazy builder, which serves its own layout); serve cells are
/// batch x flush x range-override x shards (x fanout when sharded).
struct ExploreGrid {
  std::vector<std::int64_t> ci, cb, s;
  std::vector<std::int64_t> r;  ///< lazy builder only
  /// Builder names: the five tuned algorithms ("node-level", "nested",
  /// "in-place", "lazy", "balanced") plus the reference builders ("median",
  /// "sweep", "event").
  std::vector<std::string> builders;
  /// Serving layouts for eager builds: "compact", "wide4", "wide8", "bvh"
  /// (or "native" to query the builder's own layout).
  std::vector<std::string> backends;
  std::vector<std::int64_t> serve_batch;
  std::vector<std::int64_t> serve_flush_us;
  /// Per-family override axis: range-query batch size (0 = inherit).
  std::vector<std::int64_t> serve_range_batch;
  std::vector<std::int64_t> serve_shards;  ///< 1 = unsharded QueryService
  std::vector<std::int64_t> serve_fanout;  ///< sharded cells only; 0 = uncapped

  /// The default coarse sweep over Table II and the serving knobs.
  static ExploreGrid coarse();
  /// A minutes-not-hours grid for CI smoke runs and tests.
  static ExploreGrid smoke();
};

struct ExploreOptions {
  std::vector<std::string> scenes{"bunny"};
  float detail = 0.12f;
  unsigned threads = 3;  ///< pool workers (also the hardware-key thread count)
  ExploreGrid grid = ExploreGrid::coarse();
  bool sweep_build = true;
  bool sweep_serve = true;
  std::size_t build_rays = 512;      ///< probe rays per build cell
  std::size_t serve_requests = 256;  ///< requests per serve cell
  std::uint64_t seed = 0x5EED;
  /// Stop after measuring this many cells this invocation (0 = no cap).
  /// Skipped (already-measured) cells do not count — a capped run still
  /// makes forward progress when resumed.
  std::size_t max_cells = 0;
  /// Database checkpoint path; empty keeps the database in memory only.
  std::string db_path;
  /// Progress (resume) file; empty derives `db_path + ".progress"`.
  std::string progress_path;
  TunerLog* log = nullptr;  ///< optional; streams named "explore:<scene>:..."
};

struct ExploreStats {
  std::size_t cells_total = 0;    ///< enumerated for this option set
  std::size_t cells_run = 0;      ///< measured this invocation
  std::size_t cells_skipped = 0;  ///< resumed past (found in progress file)
  std::size_t db_updates = 0;     ///< store() calls that changed the database
  /// True when an existing progress file was discarded because it was
  /// recorded under a different grid or measurement protocol.
  bool progress_invalidated = false;
};

/// All eight builder names, in sweep order.
const std::vector<std::string>& explore_builder_names();

/// Runs the sweep, merging results into `db` (keeps-if-faster). Throws
/// std::invalid_argument for unknown scene/builder/backend names.
ExploreStats run_explore(const ExploreOptions& opts, ConfigDatabase& db);

}  // namespace kdtune
