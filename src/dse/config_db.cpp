#include "dse/config_db.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace kdtune {

namespace {

// --- minimal JSON for the JSONL line format -------------------------------
//
// The writer emits a fixed field order with plain ASCII strings, and the
// reader below parses general JSON values (objects, arrays, strings,
// numbers, literals) strictly enough to reject hand-mangled lines. Numbers
// keep their raw token so integer fields round-trip through strtoll without
// a double detour.

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string raw;  ///< number token / string payload
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> members;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("ConfigDatabase: JSON error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }

  void expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c) fail("unexpected character");
    ++pos_;
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') return null();
    return number();
  }

  JsonValue object() {
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      JsonValue key = string_value();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key.raw), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.type = JsonValue::Type::kString;
    expect('"');
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return v;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("bad escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': v.raw.push_back('"'); break;
          case '\\': v.raw.push_back('\\'); break;
          case '/': v.raw.push_back('/'); break;
          case 'b': v.raw.push_back('\b'); break;
          case 'f': v.raw.push_back('\f'); break;
          case 'n': v.raw.push_back('\n'); break;
          case 'r': v.raw.push_back('\r'); break;
          case 't': v.raw.push_back('\t'); break;
          default: fail("unsupported escape");
        }
      } else {
        v.raw.push_back(c);
      }
    }
  }

  JsonValue boolean() {
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    if (s_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
    } else {
      fail("bad literal");
    }
    return v;
  }

  JsonValue null() {
    JsonValue v;
    if (s_.compare(pos_, 4, "null") != 0) fail("bad literal");
    pos_ += 4;
    return v;
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool digits = false;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+')) {
      if (std::isdigit(static_cast<unsigned char>(s_[pos_]))) digits = true;
      ++pos_;
    }
    if (!digits) fail("bad number");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.raw = s_.substr(start, pos_ - start);
    v.number = std::strtod(v.raw.c_str(), nullptr);
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out.push_back(c);
    }
  }
  out.push_back('"');
}

std::string double_token(double v) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  return os.str();
}

const JsonValue& require(const JsonValue& obj, const std::string& key,
                         JsonValue::Type type) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->type != type) {
    throw std::runtime_error("ConfigDatabase: missing or mistyped field '" +
                             key + "'");
  }
  return *v;
}

std::int64_t int_of(const JsonValue& v) {
  if (v.type != JsonValue::Type::kNumber) {
    throw std::runtime_error("ConfigDatabase: expected integer");
  }
  return std::strtoll(v.raw.c_str(), nullptr, 10);
}

}  // namespace

std::string ConfigDatabase::Entry::key() const {
  return workload + "|" + scene + "|" + builder + "|" + backend + "|" +
         hw.id();
}

bool ConfigDatabase::store(Entry entry) {
  const std::string key = entry.key();
  if (key.find('\n') != std::string::npos) {
    throw std::invalid_argument("ConfigDatabase: key must not contain newline");
  }
  const auto it = entries_.find(key);
  if (it != entries_.end() && it->second.seconds <= entry.seconds) return false;
  entries_[key] = std::move(entry);
  return true;
}

std::optional<ConfigDatabase::Entry> ConfigDatabase::lookup(
    const std::string& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

ConfigDatabase::Match ConfigDatabase::nearest(
    const std::string& workload, const SceneFeatures& features,
    const HardwareDescriptor& hw, const std::string& builder,
    const std::string& backend, double near_threshold) const {
  Match best;
  double best_distance = std::numeric_limits<double>::infinity();
  const std::string* best_key = nullptr;
  for (const auto& [key, entry] : entries_) {
    if (entry.workload != workload) continue;
    if (!builder.empty() && entry.builder != builder) continue;
    if (!backend.empty() && entry.backend != backend) continue;
    const double d =
        feature_distance(entry.features, features) +
        hardware_distance(entry.hw, hw);
    // Equidistant entries tie-break on the smaller key, never on container
    // iteration or insertion order: warm starts must pick the same entry
    // before and after a save→load round trip.
    if (d < best_distance ||
        (d == best_distance && best_key != nullptr && key < *best_key)) {
      best_distance = d;
      best_key = &key;
      best.entry = &entry;
    }
  }
  if (best.entry == nullptr) return best;
  best.distance = best_distance;
  if (best.entry->features == features && best.entry->hw == hw) {
    best.kind = MatchKind::kExact;
  } else if (best_distance <= near_threshold) {
    best.kind = MatchKind::kNear;
  } else {
    best.kind = MatchKind::kFar;
  }
  return best;
}

std::vector<const ConfigDatabase::Entry*> ConfigDatabase::entries() const {
  std::vector<const Entry*> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) out.push_back(&entry);
  return out;
}

void ConfigDatabase::save(std::ostream& out) const {
  out << "{\"format\":\"kdtune-configdb\",\"version\":" << kFormatVersion
      << "}\n";
  for (const auto& [key, entry] : entries_) {
    std::string line = "{\"workload\":";
    append_escaped(line, entry.workload);
    line += ",\"scene\":";
    append_escaped(line, entry.scene);
    line += ",\"builder\":";
    append_escaped(line, entry.builder);
    line += ",\"backend\":";
    append_escaped(line, entry.backend);
    line += ",\"hw\":{\"threads\":" + std::to_string(entry.hw.threads) +
            ",\"cores\":" + std::to_string(entry.hw.cores) + ",\"simd\":";
    append_escaped(line, to_string(entry.hw.simd));
    line += ",\"cache_line\":" + std::to_string(entry.hw.cache_line) + "}";
    line += ",\"prims\":" + std::to_string(entry.features.prim_count);
    line += ",\"features\":[";
    for (std::size_t i = 0; i < kSceneFeatureCount; ++i) {
      if (i > 0) line += ",";
      line += double_token(entry.features.v[i]);
    }
    line += "],\"params\":[";
    for (std::size_t i = 0; i < entry.params.size(); ++i) {
      if (i > 0) line += ",";
      line += "[";
      append_escaped(line, entry.params[i].first);
      line += "," + std::to_string(entry.params[i].second) + "]";
    }
    line += "],\"seconds\":" + double_token(entry.seconds) + "}";
    out << line << '\n';
  }
}

void ConfigDatabase::load(std::istream& in) {
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    JsonValue obj;
    try {
      obj = JsonParser(line).parse();
    } catch (const std::exception& e) {
      throw std::runtime_error("ConfigDatabase: line " +
                               std::to_string(line_no) + ": " + e.what());
    }
    if (obj.type != JsonValue::Type::kObject) {
      throw std::runtime_error("ConfigDatabase: line " +
                               std::to_string(line_no) + ": not an object");
    }
    if (!saw_header) {
      const JsonValue& format =
          require(obj, "format", JsonValue::Type::kString);
      if (format.raw != "kdtune-configdb") {
        throw std::runtime_error("ConfigDatabase: unrecognized format '" +
                                 format.raw + "'");
      }
      const std::int64_t version =
          int_of(require(obj, "version", JsonValue::Type::kNumber));
      if (version > kFormatVersion) {
        throw std::runtime_error("ConfigDatabase: version " +
                                 std::to_string(version) +
                                 " is newer than this build understands");
      }
      saw_header = true;
      continue;
    }
    Entry entry;
    entry.workload = require(obj, "workload", JsonValue::Type::kString).raw;
    entry.scene = require(obj, "scene", JsonValue::Type::kString).raw;
    entry.builder = require(obj, "builder", JsonValue::Type::kString).raw;
    entry.backend = require(obj, "backend", JsonValue::Type::kString).raw;
    const JsonValue& hw = require(obj, "hw", JsonValue::Type::kObject);
    entry.hw.threads = static_cast<unsigned>(
        int_of(require(hw, "threads", JsonValue::Type::kNumber)));
    entry.hw.cores = static_cast<unsigned>(
        int_of(require(hw, "cores", JsonValue::Type::kNumber)));
    if (!simd_level_from_string(
            require(hw, "simd", JsonValue::Type::kString).raw,
            entry.hw.simd)) {
      throw std::runtime_error("ConfigDatabase: line " +
                               std::to_string(line_no) +
                               ": unknown simd level");
    }
    entry.hw.cache_line = static_cast<unsigned>(
        int_of(require(hw, "cache_line", JsonValue::Type::kNumber)));
    entry.features.prim_count = static_cast<std::uint64_t>(
        int_of(require(obj, "prims", JsonValue::Type::kNumber)));
    const JsonValue& features =
        require(obj, "features", JsonValue::Type::kArray);
    if (features.items.size() != kSceneFeatureCount) {
      throw std::runtime_error("ConfigDatabase: line " +
                               std::to_string(line_no) +
                               ": wrong feature count");
    }
    for (std::size_t i = 0; i < kSceneFeatureCount; ++i) {
      if (features.items[i].type != JsonValue::Type::kNumber) {
        throw std::runtime_error("ConfigDatabase: line " +
                                 std::to_string(line_no) +
                                 ": non-numeric feature");
      }
      entry.features.v[i] = features.items[i].number;
    }
    const JsonValue& params = require(obj, "params", JsonValue::Type::kArray);
    for (const JsonValue& pair : params.items) {
      if (pair.type != JsonValue::Type::kArray || pair.items.size() != 2 ||
          pair.items[0].type != JsonValue::Type::kString) {
        throw std::runtime_error("ConfigDatabase: line " +
                                 std::to_string(line_no) + ": bad param pair");
      }
      entry.params.emplace_back(pair.items[0].raw, int_of(pair.items[1]));
    }
    entry.seconds = require(obj, "seconds", JsonValue::Type::kNumber).number;
    store(std::move(entry));
  }
  if (!saw_header && line_no > 0) {
    throw std::runtime_error("ConfigDatabase: missing header line");
  }
}

void ConfigDatabase::save_file(const std::string& path) const {
  // Same protocol as ConfigCache::save_file: write a process-unique temp in
  // the target directory, then rename — readers never see a torn database.
  namespace fs = std::filesystem;
  static std::atomic<unsigned> save_serial{0};
  const fs::path target(path);
  fs::path tmp(target);
  tmp += ".tmp" + std::to_string(save_serial.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      throw std::runtime_error("ConfigDatabase: cannot write " + tmp.string());
    }
    save(out);
    out.flush();
    if (!out) {
      std::error_code ec;
      fs::remove(tmp, ec);
      throw std::runtime_error("ConfigDatabase: write failed for " +
                               tmp.string());
    }
  }
  std::error_code ec;
  fs::rename(tmp, target, ec);
  if (ec) {
    std::error_code ignored;
    fs::remove(tmp, ignored);
    throw std::runtime_error("ConfigDatabase: cannot replace " + path + ": " +
                             ec.message());
  }
}

void ConfigDatabase::load_file(const std::string& path) {
  // Warm starts are an optimisation, never a dependency: anything wrong
  // with the file degrades to a warned cold start (ConfigCache contract).
  if (!std::filesystem::exists(path)) return;
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "ConfigDatabase: cannot read %s; starting cold\n",
                 path.c_str());
    return;
  }
  ConfigDatabase incoming;
  try {
    incoming.load(in);
  } catch (const std::exception& e) {
    std::fprintf(stderr,
                 "ConfigDatabase: ignoring corrupt database %s (%s); "
                 "starting cold\n",
                 path.c_str(), e.what());
    return;
  }
  for (auto& [key, entry] : incoming.entries_) {
    store(std::move(entry));
  }
}

}  // namespace kdtune
