#include "dse/explore.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <future>
#include <sstream>
#include <map>
#include <memory>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "bvh/bvh.hpp"
#include "kdtree/builder.hpp"
#include "kdtree/compact_tree.hpp"
#include "kdtree/query_backend.hpp"
#include "kdtree/tree.hpp"
#include "kdtree/wide_tree.hpp"
#include "obs/trace.hpp"
#include "obs/tuner_log.hpp"
#include "parallel/thread_pool.hpp"
#include "scene/generators.hpp"
#include "serve/query_service.hpp"
#include "serve/scene_registry.hpp"
#include "shard/shard_router.hpp"

namespace kdtune {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// SplitMix64 — deterministic probe-load generation, independent of the
/// standard library's distribution implementations.
struct SplitMix64 {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  double uniform() {  // [0, 1)
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }
};

std::unique_ptr<Builder> builder_by_name(const std::string& name) {
  if (name == "median") return make_median_builder();
  if (name == "sweep") return make_sweep_builder();
  if (name == "event") return make_event_builder();
  return make_builder(algorithm_from_string(name));  // throws on unknown
}

struct Cell {
  enum class Kind { kBuild, kServe };
  Kind kind = Kind::kBuild;
  std::string scene;
  std::string builder;  ///< build cells
  std::string backend;  ///< build cells ("native" = builder's own layout)
  std::int64_t ci = 0, cb = 0, s = 0, r = 0;
  std::int64_t batch = 0, flush_us = 0, range_batch = 0;  ///< serve cells
  std::int64_t shards = 1, fanout = 0;

  /// The resume key. Thread count and detail are part of it: a sweep re-run
  /// under a different pool width or geometry scale must re-measure, not
  /// trust cells from the old context.
  std::string key(unsigned threads, float detail) const {
    char suffix[64];
    std::snprintf(suffix, sizeof(suffix), "|t=%u|d=%g", threads,
                  static_cast<double>(detail));
    if (kind == Kind::kBuild) {
      std::string k = "build|" + scene + "|" + builder + "|" + backend +
                      "|ci=" + std::to_string(ci) +
                      ";cb=" + std::to_string(cb) + ";s=" + std::to_string(s);
      if (builder == "lazy") k += ";r=" + std::to_string(r);
      return k + suffix;
    }
    return "serve|" + scene + "|batch=" + std::to_string(batch) +
           ";flush=" + std::to_string(flush_us) +
           ";rb=" + std::to_string(range_batch) +
           ";sh=" + std::to_string(shards) + ";fo=" + std::to_string(fanout) +
           suffix;
  }
};

std::vector<Cell> enumerate_cells(const ExploreOptions& opts) {
  std::vector<Cell> cells;
  const ExploreGrid& g = opts.grid;
  for (const std::string& scene : opts.scenes) {
    if (opts.sweep_build) {
      for (const std::string& builder : g.builders) {
        const bool lazy = builder == "lazy";
        for (std::int64_t ci : g.ci) {
          for (std::int64_t cb : g.cb) {
            for (std::int64_t s : g.s) {
              Cell c;
              c.kind = Cell::Kind::kBuild;
              c.scene = scene;
              c.builder = builder;
              c.ci = ci;
              c.cb = cb;
              c.s = s;
              if (lazy) {
                // Lazy trees expand in place and serve their own layout;
                // the backend axis is replaced by the R axis.
                c.backend = "native";
                for (std::int64_t r : g.r) {
                  c.r = r;
                  cells.push_back(c);
                }
              } else {
                for (const std::string& backend : g.backends) {
                  c.backend = backend;
                  cells.push_back(c);
                }
              }
            }
          }
        }
      }
    }
    if (opts.sweep_serve) {
      for (std::int64_t batch : g.serve_batch) {
        for (std::int64_t flush : g.serve_flush_us) {
          for (std::int64_t rb : g.serve_range_batch) {
            for (std::int64_t sh : g.serve_shards) {
              Cell c;
              c.kind = Cell::Kind::kServe;
              c.scene = scene;
              c.batch = batch;
              c.flush_us = flush;
              c.range_batch = rb;
              c.shards = sh;
              if (sh <= 1) {
                cells.push_back(c);
              } else {
                // The fanout cap only exists once there are shards to fan
                // out over, so the axis multiplies sharded cells only.
                for (std::int64_t fo : g.serve_fanout) {
                  c.fanout = fo;
                  cells.push_back(c);
                }
              }
            }
          }
        }
      }
    }
  }
  return cells;
}

/// Per-scene state, built lazily the first time a cell needs it.
struct SceneState {
  Scene scene;
  SceneFeatures features;
  std::vector<Ray> rays;    ///< shared probe load: costs stay comparable
  std::vector<AABB> boxes;  ///< range-query probe load
};

/// The last eager build, memoized so the backend axis re-emits layouts
/// instead of repeating an identical SAH build per backend cell. The
/// memoized build/compact times are charged to every cell that reuses
/// them — each cell's cost is what a cold service would pay end to end.
struct BuiltTree {
  std::string key;
  std::unique_ptr<KdTreeBase> tree;
  const KdTree* eager = nullptr;
  std::shared_ptr<const CompactKdTree> compact;
  double build_seconds = 0.0;
  double compact_seconds = 0.0;
};

Ray make_probe_ray(SplitMix64& rng, const AABB& box) {
  const Vec3 ext = box.extent();
  const Vec3 mid = box.center();
  const float radius =
      0.75f * std::sqrt(ext.x * ext.x + ext.y * ext.y + ext.z * ext.z);
  // Origin on a sphere around the scene, aimed at a random interior point.
  const double u = rng.uniform() * 2.0 - 1.0;
  const double phi = rng.uniform() * 6.28318530717958647692;
  const double sin_theta = std::sqrt(std::max(0.0, 1.0 - u * u));
  const Vec3 origin{mid.x + radius * static_cast<float>(sin_theta *
                                                        std::cos(phi)),
                    mid.y + radius * static_cast<float>(sin_theta *
                                                        std::sin(phi)),
                    mid.z + radius * static_cast<float>(u)};
  const Vec3 target{
      box.lo.x + ext.x * static_cast<float>(rng.uniform()),
      box.lo.y + ext.y * static_cast<float>(rng.uniform()),
      box.lo.z + ext.z * static_cast<float>(rng.uniform())};
  return Ray(origin, target - origin);
}

AABB make_probe_box(SplitMix64& rng, const AABB& box) {
  const Vec3 ext = box.extent();
  Vec3 lo, hi;
  const float* e = &ext.x;
  const float* bl = &box.lo.x;
  float* plo = &lo.x;
  float* phi = &hi.x;
  for (int a = 0; a < 3; ++a) {
    const float size = e[a] * (0.02f + 0.08f * static_cast<float>(rng.uniform()));
    const float at = bl[a] + (e[a] - size) * static_cast<float>(rng.uniform());
    plo[a] = at;
    phi[a] = at + size;
  }
  return AABB(lo, hi);
}

SceneState& scene_state(std::map<std::string, SceneState>& cache,
                        const std::string& id, const ExploreOptions& opts) {
  auto it = cache.find(id);
  if (it != cache.end()) return it->second;
  SceneState state;
  state.scene = make_scene(id, opts.detail)->frame(0);
  state.features = SceneFeatures::extract(state.scene.triangles());
  SplitMix64 rng{opts.seed ^ std::hash<std::string>{}(id)};
  const AABB bounds = state.scene.bounds();
  const std::size_t probes = std::max(opts.build_rays, opts.serve_requests);
  state.rays.reserve(probes);
  for (std::size_t i = 0; i < probes; ++i) {
    state.rays.push_back(make_probe_ray(rng, bounds));
  }
  state.boxes.reserve(probes / 4 + 1);
  for (std::size_t i = 0; i < probes / 4 + 1; ++i) {
    state.boxes.push_back(make_probe_box(rng, bounds));
  }
  return cache.emplace(id, std::move(state)).first->second;
}

BuildConfig config_for(const Cell& cell) {
  BuildConfig config;
  config.ci = cell.ci;
  config.cb = cell.cb;
  config.s = cell.s;
  if (cell.r > 0) config.r = cell.r;
  return config;
}

BuildConfig best_build_config(const ConfigDatabase& db,
                              const SceneFeatures& features,
                              const HardwareDescriptor& hw) {
  const auto match = db.nearest("build", features, hw, "in-place", "compact");
  if (match.entry == nullptr) return kBaseConfig;
  BuildConfig config = kBaseConfig;
  for (const auto& [name, value] : match.entry->params) {
    if (name == "ci") config.ci = value;
    if (name == "cb") config.cb = value;
    if (name == "s") config.s = value;
    if (name == "r") config.r = value;
  }
  return config;
}

/// Measures one build cell: timed build (+ layout emission) + the shared
/// probe-ray load on the resulting serving tree. Returns the cell cost in
/// seconds, or a negative value when the builder's output cannot express
/// the requested backend (the cell is recorded as done but yields no entry).
double measure_build_cell(const Cell& cell, SceneState& state,
                          BuiltTree& built, ThreadPool& pool,
                          std::size_t rays) {
  const std::string build_key =
      cell.scene + "|" + cell.builder + "|" + std::to_string(cell.ci) + "," +
      std::to_string(cell.cb) + "," + std::to_string(cell.s) + "," +
      std::to_string(cell.r);
  if (built.key != build_key) {
    built = BuiltTree{};
    built.key = build_key;
    const auto builder = builder_by_name(cell.builder);
    const auto start = Clock::now();
    built.tree =
        builder->build(state.scene.triangles(), config_for(cell), pool);
    built.build_seconds = seconds_since(start);
    built.eager = dynamic_cast<const KdTree*>(built.tree.get());
  }

  double emit_seconds = 0.0;
  const KdTreeBase* query_tree = built.tree.get();
  std::shared_ptr<const KdTreeBase> emitted;  // keeps wide/bvh trees alive
  if (cell.backend != "native") {
    if (cell.backend == "bvh") {
      const auto start = Clock::now();
      emitted = build_bvh(state.scene.triangles(), BvhConfig{}, pool);
      emit_seconds = seconds_since(start);
      query_tree = emitted.get();
    } else {
      if (built.eager == nullptr) return -1.0;  // cannot re-emit this layout
      if (!built.compact) {
        const auto start = Clock::now();
        built.compact = std::make_shared<const CompactKdTree>(*built.eager);
        built.compact_seconds = seconds_since(start);
      }
      emit_seconds = built.compact_seconds;
      if (cell.backend == "compact") {
        query_tree = built.compact.get();
      } else {
        QueryBackend backend;
        if (!backend_from_string(cell.backend, backend)) {
          throw std::invalid_argument("explore: unknown backend " +
                                      cell.backend);
        }
        const auto start = Clock::now();
        emitted = make_wide_tree(built.compact, backend);
        emit_seconds += seconds_since(start);
        query_tree = emitted.get();
      }
    }
  }

  const std::size_t n = std::min(rays, state.rays.size());
  std::size_t hits = 0;
  const auto start = Clock::now();
  for (std::size_t i = 0; i < n; ++i) {
    if (query_tree->closest_hit(state.rays[i]).valid()) ++hits;
  }
  double query_seconds = seconds_since(start);
  (void)hits;
  return built.build_seconds + emit_seconds + query_seconds;
}

/// Measures one serve cell: seconds per completed request under a mixed
/// closed-loop load (3:1 closest-hit : range) against a fresh service or
/// shard router configured with the cell's knobs.
double measure_serve_cell(const Cell& cell, SceneState& state,
                          SceneRegistry& registry, ThreadPool& pool,
                          const BuildConfig& build_config,
                          std::size_t requests) {
  ServingParams params;
  params.batch_size = cell.batch;
  params.flush_timeout_us = cell.flush_us;
  params.family[static_cast<std::size_t>(QueryKind::kRange)].batch_size =
      cell.range_batch;

  std::vector<std::future<QueryResponse>> inflight;
  inflight.reserve(64);
  std::uint64_t completed = 0;
  double elapsed = 0.0;

  const auto drain = [&] {
    for (auto& f : inflight) {
      if (f.get().status == QueryStatus::kOk) ++completed;
    }
    inflight.clear();
  };

  if (cell.shards <= 1) {
    ServiceOptions sopts;
    sopts.params = params;
    QueryService service(registry, pool, sopts);
    const auto start = Clock::now();
    for (std::size_t i = 0; i < requests; ++i) {
      if (i % 4 == 3) {
        inflight.push_back(service.submit_range(
            cell.scene, state.boxes[(i / 4) % state.boxes.size()]));
      } else {
        inflight.push_back(service.submit_closest_hit(
            cell.scene, state.rays[i % state.rays.size()]));
      }
      if (inflight.size() >= 64) drain();
    }
    drain();
    elapsed = seconds_since(start);
  } else {
    const auto tris = state.scene.triangles();
    ShardRouterOptions ropts;
    ropts.shard_count = static_cast<int>(cell.shards);
    ropts.fanout_cap = static_cast<int>(cell.fanout);
    ropts.router_threads = 2;
    ropts.config = build_config;
    ropts.shard_service.params = params;
    ShardRouter router(std::vector<Triangle>(tris.begin(), tris.end()),
                       ropts);
    const auto start = Clock::now();
    for (std::size_t i = 0; i < requests; ++i) {
      if (i % 4 == 3) {
        inflight.push_back(router.submit_range(
            "explore", state.boxes[(i / 4) % state.boxes.size()]));
      } else {
        inflight.push_back(router.submit_closest_hit(
            "explore", state.rays[i % state.rays.size()]));
      }
      if (inflight.size() >= 64) drain();
    }
    drain();
    elapsed = seconds_since(start);
  }
  if (completed == 0) return -1.0;  // nothing served; no entry to record
  return elapsed / static_cast<double>(completed);
}

ConfigDatabase::Entry entry_for(const Cell& cell, const SceneState& state,
                                const HardwareDescriptor& hw,
                                double seconds) {
  ConfigDatabase::Entry entry;
  entry.scene = cell.scene;
  entry.hw = hw;
  entry.features = state.features;
  entry.seconds = seconds;
  if (cell.kind == Cell::Kind::kBuild) {
    entry.workload = "build";
    entry.builder = cell.builder;
    entry.backend = cell.backend;
    entry.params = {{"ci", cell.ci}, {"cb", cell.cb}, {"s", cell.s}};
    if (cell.builder == "lazy") entry.params.emplace_back("r", cell.r);
  } else {
    entry.workload = "serve";
    entry.builder = "in-place";
    entry.backend = "compact";
    entry.params = {{"batch_size", cell.batch},
                    {"flush_timeout_us", cell.flush_us},
                    {"range.batch_size", cell.range_batch},
                    {"shard_count", cell.shards},
                    {"fanout_cap", cell.fanout}};
  }
  return entry;
}

}  // namespace

ExploreGrid ExploreGrid::coarse() {
  ExploreGrid g;
  g.ci = {3, 17, 49, 101};
  g.cb = {0, 10, 30, 60};
  g.s = {1, 3, 8};
  g.r = {16, 256, 4096};
  g.builders = explore_builder_names();
  g.backends = {"compact", "wide4", "wide8", "bvh"};
  g.serve_batch = {1, 16, 128};
  g.serve_flush_us = {0, 200};
  g.serve_range_batch = {0, 16};
  g.serve_shards = {1, 2};
  g.serve_fanout = {0, 1};
  return g;
}

ExploreGrid ExploreGrid::smoke() {
  ExploreGrid g;
  g.ci = {17, 49};
  g.cb = {10};
  g.s = {3};
  g.r = {4096};
  g.builders = {"in-place", "sweep", "balanced"};
  g.backends = {"compact", "wide8"};
  g.serve_batch = {1, 16};
  g.serve_flush_us = {0};
  g.serve_range_batch = {0};
  g.serve_shards = {1};
  g.serve_fanout = {0};
  return g;
}

const std::vector<std::string>& explore_builder_names() {
  static const std::vector<std::string> names{
      "node-level", "nested", "in-place", "lazy",
      "balanced",   "median", "sweep",    "event"};
  return names;
}

namespace {

std::string grid_signature(const ExploreOptions& opts) {
  // Everything that defines what a progress line *means*: the swept axes and
  // the measurement protocol. Cell keys already carry their own parameters,
  // but probe sizes and the seed are not part of them — resuming a sweep
  // whose protocol changed would silently mix incomparable measurements.
  std::ostringstream sig;
  sig << "v1";
  const auto strings = [&sig](const char* name,
                              const std::vector<std::string>& v) {
    sig << '|' << name << '=';
    for (std::size_t i = 0; i < v.size(); ++i) sig << (i ? "," : "") << v[i];
  };
  const auto ints = [&sig](const char* name,
                           const std::vector<std::int64_t>& v) {
    sig << '|' << name << '=';
    for (std::size_t i = 0; i < v.size(); ++i) sig << (i ? "," : "") << v[i];
  };
  strings("scenes", opts.scenes);
  sig << "|detail=" << opts.detail << "|threads=" << opts.threads;
  strings("builders", opts.grid.builders);
  strings("backends", opts.grid.backends);
  ints("ci", opts.grid.ci);
  ints("cb", opts.grid.cb);
  ints("s", opts.grid.s);
  ints("r", opts.grid.r);
  ints("batch", opts.grid.serve_batch);
  ints("flush", opts.grid.serve_flush_us);
  ints("rbatch", opts.grid.serve_range_batch);
  ints("shards", opts.grid.serve_shards);
  ints("fanout", opts.grid.serve_fanout);
  sig << "|build=" << opts.sweep_build << "|serve=" << opts.sweep_serve
      << "|rays=" << opts.build_rays << "|requests=" << opts.serve_requests
      << "|seed=" << opts.seed;
  return sig.str();
}

}  // namespace

ExploreStats run_explore(const ExploreOptions& opts, ConfigDatabase& db) {
  const std::vector<Cell> cells = enumerate_cells(opts);
  ExploreStats stats;
  stats.cells_total = cells.size();

  const std::string progress_path =
      !opts.progress_path.empty()
          ? opts.progress_path
          : (opts.db_path.empty() ? std::string() : opts.db_path + ".progress");
  const std::string signature = grid_signature(opts);
  std::unordered_set<std::string> done;
  bool valid_existing = false;
  if (!progress_path.empty()) {
    std::ifstream in(progress_path);
    std::string line;
    bool first = true;
    bool stale = false;
    while (std::getline(in, line)) {
      if (first) {
        first = false;
        if (line.rfind("#grid ", 0) == 0) {
          valid_existing = line.compare(6, std::string::npos, signature) == 0;
          stale = !valid_existing;
          if (stale) break;
          continue;
        }
        // No signature header: a pre-signature (or hand-edited) file whose
        // grid is unknowable. Treat as stale rather than silently resuming.
        stale = true;
        break;
      }
      if (!line.empty()) done.insert(line);
    }
    if (stale) {
      std::fprintf(stderr,
                   "explore: progress file %s was written for a different "
                   "grid or protocol; discarding it and restarting the "
                   "sweep\n",
                   progress_path.c_str());
      done.clear();
      stats.progress_invalidated = true;
    }
  }
  std::ofstream progress;
  if (!progress_path.empty()) {
    // Append to a progress file whose signature matches; otherwise start it
    // over (new file, stale grid, or legacy header-less format).
    progress.open(progress_path,
                  valid_existing ? std::ios::app : std::ios::trunc);
    if (!progress) {
      throw std::runtime_error("explore: cannot write progress file " +
                               progress_path);
    }
    if (!valid_existing) {
      progress << "#grid " << signature << '\n';
      progress.flush();
    }
  }

  ThreadPool pool(opts.threads);
  const HardwareDescriptor hw = HardwareDescriptor::detect(opts.threads);
  std::map<std::string, SceneState> scenes;
  BuiltTree built;
  // One registry shared by the unsharded serve cells; scenes are admitted
  // lazily with the best build configuration the database knows so far.
  SceneRegistry registry(pool);
  std::uint64_t log_iteration = 0;

  for (const Cell& cell : cells) {
    const std::string key = cell.key(opts.threads, opts.detail);
    if (done.count(key) != 0) {
      ++stats.cells_skipped;
      continue;
    }
    if (opts.max_cells != 0 && stats.cells_run >= opts.max_cells) continue;

    SceneState& state = scene_state(scenes, cell.scene, opts);
    double seconds = -1.0;
    {
      TraceSpan span("explore.cell", "explore");
      if (cell.kind == Cell::Kind::kBuild) {
        seconds =
            measure_build_cell(cell, state, built, pool, opts.build_rays);
      } else {
        const BuildConfig config = best_build_config(db, state.features, hw);
        if (!registry.acquire(cell.scene)) {
          AdmitOptions aopts;
          aopts.algorithm = Algorithm::kInPlace;
          aopts.config = config;
          registry.admit(cell.scene, state.scene, aopts);
        }
        seconds = measure_serve_cell(cell, state, registry, pool, config,
                                     opts.serve_requests);
      }
    }
    ++stats.cells_run;

    if (seconds >= 0.0) {
      const ConfigDatabase::Entry entry = entry_for(cell, state, hw, seconds);
      if (db.store(entry)) ++stats.db_updates;
      if (opts.log != nullptr) {
        TunerLog::Record record;
        record.tuner = "explore:" + cell.scene +
                       (cell.kind == Cell::Kind::kBuild
                            ? ":" + cell.builder
                            : std::string(":serve"));
        record.iteration = log_iteration++;
        record.params = entry.params;
        record.seconds = seconds;
        record.status = "measured";
        record.phase = "sweep";
        if (cell.kind == Cell::Kind::kBuild && cell.backend != "native") {
          record.backend = cell.backend;
        }
        opts.log->log(record);
      }
    }

    // Checkpoint: the database first, the progress line second — a crash
    // between the two re-measures one cell instead of losing one.
    if (!opts.db_path.empty()) db.save_file(opts.db_path);
    if (progress.is_open()) {
      progress << key << '\n';
      progress.flush();
    }
  }
  return stats;
}

}  // namespace kdtune
