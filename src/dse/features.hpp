#pragma once

// Context descriptors for the offline design-space explorer and its config
// database (docs/EXPLORE.md). A database entry is keyed by *where it was
// measured*: what the scene looks like (SceneFeatures) and what machine ran
// it (HardwareDescriptor). A new (scene, machine) pair then warm-starts the
// online tuner from the entry whose context is *nearest*, instead of paying
// the full Nelder–Mead search from a cold simplex.
//
// Feature extraction is deliberately geometry-only and sequential: the same
// triangle soup yields the bit-identical feature vector regardless of thread
// count, builder choice, or which run computed it — that determinism is what
// makes features usable as database keys (tests/test_dse_features.cpp).

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "geom/triangle.hpp"
#include "kdtree/simd_dispatch.hpp"

namespace kdtune {

/// The machine half of a database key. `threads` is the pool width the
/// measurement used (the knob the paper's S parameter scales with);
/// cores/simd/cache_line describe the host itself.
struct HardwareDescriptor {
  unsigned threads = 1;     ///< pool concurrency of the measurement
  unsigned cores = 1;       ///< hardware threads of the host
  SimdLevel simd = SimdLevel::kScalar;  ///< wide-kernel tier in use
  unsigned cache_line = 64; ///< L1D line size in bytes

  /// Detects the host (core count, SIMD tier after the KDTUNE_SIMD
  /// override, cache line) for a measurement running on `threads` workers.
  static HardwareDescriptor detect(unsigned threads);

  /// Host identity without the thread count, e.g. "8c-avx2-cl64". This is
  /// the ConfigCache key suffix (the key already carries threads=N).
  std::string suffix() const;

  /// Full identity including the pool width, e.g. "4t-8c-avx2-cl64" — the
  /// database's hardware key.
  std::string id() const;

  bool operator==(const HardwareDescriptor& other) const noexcept {
    return threads == other.threads && cores == other.cores &&
           simd == other.simd && cache_line == other.cache_line;
  }
};

/// Normalized distance between two hardware contexts: 0 for identical,
/// growing with thread/core ratio (log2 scale) and SIMD-tier mismatch.
/// Symmetric; used as an additive penalty next to the feature distance.
double hardware_distance(const HardwareDescriptor& a,
                         const HardwareDescriptor& b) noexcept;

/// The scene half of a database key: a fixed-length vector of geometry
/// statistics that drive SAH build cost and traversal behaviour.
///
/// Layout (kSceneFeatureCount doubles, names in feature_names()):
///   [0]      log2(1 + prim_count)
///   [1..2]   box shape: mid/max and min/max extent ratios
///   [3..5]   centroid mean per axis, normalized into [0,1] by the box
///   [6..8]   centroid stddev per axis, normalized by the axis extent
///   [9]      straddler ratio: mean over axes of the fraction of triangles
///            whose bounds cross the box midplane (the prims SAH splits
///            must duplicate)
///   [10]     overlap: log2(1 + sum of triangle-AABB surface area over the
///            scene box surface area) — the SAH density measure
///   [11..18] size sketch: 8-bucket histogram (fractions) of
///            log2(triangle diagonal / scene diagonal)
inline constexpr std::size_t kSceneFeatureCount = 19;
inline constexpr std::size_t kSceneSizeBuckets = 8;

struct SceneFeatures {
  std::uint64_t prim_count = 0;
  std::array<double, kSceneFeatureCount> v{};

  /// Deterministic extraction: one sequential double-precision pass over
  /// the soup (order-dependent sums never see a thread-dependent order).
  static SceneFeatures extract(std::span<const Triangle> triangles);

  bool operator==(const SceneFeatures& other) const noexcept {
    return prim_count == other.prim_count && v == other.v;
  }
};

/// Feature names in vector order (JSONL schema and tooling output).
const std::array<const char*, kSceneFeatureCount>& feature_names() noexcept;

/// Normalized L2 distance over the per-dimension scaled feature deltas.
/// Symmetric; 0 iff the vectors are bit-identical. Roughly: < 0.1 is the
/// same scene class at a different size/seed, > 1 is a different class.
double feature_distance(const SceneFeatures& a, const SceneFeatures& b) noexcept;
double feature_distance(const std::array<double, kSceneFeatureCount>& a,
                        const std::array<double, kSceneFeatureCount>& b) noexcept;

}  // namespace kdtune
