#pragma once

// ConfigDatabase — the portable artifact the offline design-space explorer
// distills (docs/EXPLORE.md). It maps measurement *contexts* — (scene
// feature vector, hardware descriptor, workload tag) — to the best known
// parameter vector and its measured cost, and answers three kinds of
// lookups:
//
//   * exact-key hit: the same (workload, scene, builder, backend, hardware)
//     context was measured before -> reuse the stored parameters directly;
//   * near miss: a context within `near_threshold` normalized distance is
//     known -> warm-start the online search from its parameters and let
//     Nelder-Mead fine-tune;
//   * far miss: nothing nearby -> cold start, exactly as without a database.
//
// Storage is versioned, human-diffable JSONL: one header line, then one
// entry per line, in deterministic (sorted-key) order with max_digits10
// doubles, so save -> load -> save is byte-identical and databases merge
// cleanly in code review. save_file() is atomic (temp + rename) and
// load_file() degrades corrupt or unreadable files to a warned cold start —
// the same durability contract as ConfigCache.

#include <cstdint>
#include <istream>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "dse/features.hpp"

namespace kdtune {

class ConfigDatabase {
 public:
  static constexpr int kFormatVersion = 1;

  struct Entry {
    std::string workload;  ///< "build", "serve", ... (free-form tag)
    std::string scene;     ///< scene id the measurement ran on
    std::string builder;   ///< builder name ("in-place", "sweep", ...)
    std::string backend;   ///< query backend name ("compact", "wide8", ...)
    HardwareDescriptor hw{};
    SceneFeatures features{};
    /// Named parameter values, in the workload's registration order (e.g.
    /// [("ci",17),("cb",10),("s",3)] for a build entry).
    std::vector<std::pair<std::string, std::int64_t>> params;
    double seconds = 0.0;  ///< measured cost of `params` in this context

    /// The storage key: workload|scene|builder|backend|hw-id.
    std::string key() const;
  };

  enum class MatchKind { kExact, kNear, kFar };

  struct Match {
    MatchKind kind = MatchKind::kFar;
    double distance = 0.0;   ///< feature + hardware distance (0 for exact)
    const Entry* entry = nullptr;  ///< null iff no candidate exists at all
  };

  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }
  void clear() { entries_.clear(); }

  /// Records `entry` if its context is new or it is faster than the stored
  /// entry for the same key. Returns true if the database changed.
  bool store(Entry entry);

  /// The entry for an exact storage key, if any.
  std::optional<Entry> lookup(const std::string& key) const;

  /// Nearest entry with the given workload tag (and, when non-empty, the
  /// given builder/backend), ranked by feature distance plus hardware
  /// penalty. kExact requires a bit-identical feature vector and identical
  /// hardware; kNear is distance <= near_threshold. `entry` stays valid
  /// until the database is mutated.
  Match nearest(const std::string& workload, const SceneFeatures& features,
                const HardwareDescriptor& hw, const std::string& builder = {},
                const std::string& backend = {},
                double near_threshold = kDefaultNearThreshold) const;

  static constexpr double kDefaultNearThreshold = 0.35;

  /// All entries, in key order (tooling / bench iteration).
  std::vector<const Entry*> entries() const;

  void save(std::ostream& out) const;
  void load(std::istream& in);  ///< strict: throws on malformed input

  /// Atomic write (temp + rename), like ConfigCache::save_file.
  void save_file(const std::string& path) const;
  /// Missing files load nothing; unreadable/corrupt files warn to stderr
  /// and load nothing (cold start) instead of failing startup.
  void load_file(const std::string& path);

 private:
  std::map<std::string, Entry> entries_;
};

}  // namespace kdtune
