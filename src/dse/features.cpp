#include "dse/features.hpp"

#include <algorithm>
#include <cmath>

#include "core/platform.hpp"
#include "geom/aabb.hpp"

namespace kdtune {

HardwareDescriptor HardwareDescriptor::detect(unsigned threads) {
  HardwareDescriptor hw;
  hw.threads = std::max(threads, 1u);
  hw.cores = host_core_count();
  hw.simd = detect_simd_level();
  hw.cache_line = host_cache_line_bytes();
  return hw;
}

std::string HardwareDescriptor::suffix() const {
  return std::to_string(cores) + "c-" + to_string(simd) + "-cl" +
         std::to_string(cache_line);
}

std::string HardwareDescriptor::id() const {
  return std::to_string(threads) + "t-" + suffix();
}

double hardware_distance(const HardwareDescriptor& a,
                         const HardwareDescriptor& b) noexcept {
  const auto log2_ratio = [](unsigned x, unsigned y) {
    return std::abs(std::log2(static_cast<double>(std::max(x, 1u))) -
                    std::log2(static_cast<double>(std::max(y, 1u))));
  };
  double d = 0.25 * log2_ratio(a.threads, b.threads);
  d += 0.10 * log2_ratio(a.cores, b.cores);
  if (a.simd != b.simd) d += 0.25;
  if (a.cache_line != b.cache_line) d += 0.10;
  return d;
}

const std::array<const char*, kSceneFeatureCount>& feature_names() noexcept {
  static const std::array<const char*, kSceneFeatureCount> names{
      "log2_prims",    "aspect_mid",    "aspect_min",    "centroid_mean_x",
      "centroid_mean_y", "centroid_mean_z", "centroid_dev_x", "centroid_dev_y",
      "centroid_dev_z", "straddler_ratio", "log2_overlap", "size_b0",
      "size_b1",       "size_b2",       "size_b3",       "size_b4",
      "size_b5",       "size_b6",       "size_b7"};
  return names;
}

namespace {

double surface_area_of(const AABB& box) {
  if (box.empty()) return 0.0;
  const Vec3 e = box.extent();
  return 2.0 * (static_cast<double>(e.x) * e.y +
                static_cast<double>(e.y) * e.z +
                static_cast<double>(e.z) * e.x);
}

/// Per-dimension scales the distance divides by, so every dimension lands
/// roughly in [0, 1] and no single statistic dominates the L2 norm.
constexpr std::array<double, kSceneFeatureCount> kFeatureScales{
    24.0,  // log2_prims: 2^24 tris spans anything this library serves
    1.0, 1.0,             // aspect ratios already in [0, 1]
    1.0, 1.0, 1.0,        // centroid means in [0, 1]
    0.5, 0.5, 0.5,        // centroid stddevs (uniform ~0.29)
    1.0,                  // straddler ratio in [0, 1]
    8.0,                  // log2 overlap: 2^8x over-tessellation is extreme
    1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0,  // histogram fractions
};

}  // namespace

SceneFeatures SceneFeatures::extract(std::span<const Triangle> triangles) {
  SceneFeatures out;
  out.prim_count = triangles.size();
  out.v[0] = std::log2(1.0 + static_cast<double>(triangles.size()));
  if (triangles.empty()) return out;

  AABB box;
  for (const Triangle& t : triangles) box.expand(t.bounds());
  const Vec3 ext = box.extent();
  double axes[3] = {ext.x, ext.y, ext.z};
  std::sort(axes, axes + 3);
  const double max_axis = std::max(axes[2], 1e-30);
  out.v[1] = axes[1] / max_axis;
  out.v[2] = axes[0] / max_axis;

  const double diag = std::max(
      std::sqrt(static_cast<double>(ext.x) * ext.x +
                static_cast<double>(ext.y) * ext.y +
                static_cast<double>(ext.z) * ext.z),
      1e-30);
  const Vec3 mid = box.center();
  const double inv_ext[3] = {1.0 / std::max<double>(ext.x, 1e-30),
                             1.0 / std::max<double>(ext.y, 1e-30),
                             1.0 / std::max<double>(ext.z, 1e-30)};

  // One sequential pass: centroid sums, straddler counts, overlap area,
  // and the size histogram. All accumulation in double, fixed order.
  double mean[3] = {0, 0, 0};
  double m2[3] = {0, 0, 0};  // sum of squared normalized centroids
  std::uint64_t straddlers[3] = {0, 0, 0};
  double tri_area_sum = 0.0;
  std::array<std::uint64_t, kSceneSizeBuckets> size_hist{};
  for (const Triangle& t : triangles) {
    const AABB tb = t.bounds();
    const Vec3 c = t.centroid();
    const double nc[3] = {(c.x - box.lo.x) * inv_ext[0],
                          (c.y - box.lo.y) * inv_ext[1],
                          (c.z - box.lo.z) * inv_ext[2]};
    const float lo[3] = {tb.lo.x, tb.lo.y, tb.lo.z};
    const float hi[3] = {tb.hi.x, tb.hi.y, tb.hi.z};
    const float midp[3] = {mid.x, mid.y, mid.z};
    for (int a = 0; a < 3; ++a) {
      mean[a] += nc[a];
      m2[a] += nc[a] * nc[a];
      if (lo[a] < midp[a] && hi[a] > midp[a]) ++straddlers[a];
    }
    tri_area_sum += surface_area_of(tb);
    const Vec3 te = tb.extent();
    const double tdiag =
        std::sqrt(static_cast<double>(te.x) * te.x +
                  static_cast<double>(te.y) * te.y +
                  static_cast<double>(te.z) * te.z);
    // Bucket b covers tdiag/diag in [2^-(b+1), 2^-b): b0 holds huge
    // triangles (>= half the scene), b7 aggregates everything tiny.
    const double rel = tdiag / diag;
    int bucket = rel <= 0.0 ? static_cast<int>(kSceneSizeBuckets) - 1
                            : static_cast<int>(-std::floor(std::log2(rel)));
    bucket = std::clamp(bucket, 0, static_cast<int>(kSceneSizeBuckets) - 1);
    ++size_hist[static_cast<std::size_t>(bucket)];
  }

  const double n = static_cast<double>(triangles.size());
  for (int a = 0; a < 3; ++a) {
    const double mu = mean[a] / n;
    out.v[3 + a] = mu;
    const double var = std::max(m2[a] / n - mu * mu, 0.0);
    out.v[6 + a] = std::sqrt(var);
  }
  out.v[9] = static_cast<double>(straddlers[0] + straddlers[1] +
                                 straddlers[2]) /
             (3.0 * n);
  out.v[10] =
      std::log2(1.0 + tri_area_sum / std::max(surface_area_of(box), 1e-30));
  for (std::size_t b = 0; b < kSceneSizeBuckets; ++b) {
    out.v[11 + b] = static_cast<double>(size_hist[b]) / n;
  }
  return out;
}

double feature_distance(const std::array<double, kSceneFeatureCount>& a,
                        const std::array<double, kSceneFeatureCount>& b) noexcept {
  double sum = 0.0;
  for (std::size_t i = 0; i < kSceneFeatureCount; ++i) {
    const double d = (a[i] - b[i]) / kFeatureScales[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

double feature_distance(const SceneFeatures& a,
                        const SceneFeatures& b) noexcept {
  return feature_distance(a.v, b.v);
}

}  // namespace kdtune
