#pragma once

// Eager (fully built) SAH kd-tree plus the query interface shared with the
// lazy tree. Traversal follows the classic near/far stack algorithm
// (Ericson, Real-Time Collision Detection, pp. 319-321 — the reference the
// paper's ray caster cites).

#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "geom/aabb.hpp"
#include "geom/ray.hpp"
#include "geom/triangle.hpp"
#include "kdtree/nodes.hpp"

namespace kdtune {

class KnnCollector;  // kdtree/knn.hpp — shared k-NN collection core

/// Structural statistics, used by tests, benchmarks and the ablation studies.
struct TreeStats {
  std::size_t node_count = 0;
  std::size_t leaf_count = 0;
  std::size_t deferred_count = 0;   ///< lazy trees: unexpanded subtrees
  std::size_t empty_leaf_count = 0;
  std::size_t prim_refs = 0;        ///< total primitive references in leaves
  std::size_t max_depth = 0;
  double avg_leaf_prims = 0.0;      ///< over non-empty leaves
  double sah_cost = 0.0;            ///< expected traversal cost of the tree
};

/// Result of a nearest-neighbor query.
struct NearestResult {
  std::uint32_t triangle = Hit::kNoTriangle;
  Vec3 point;           ///< closest point on that triangle
  float distance_sq = std::numeric_limits<float>::infinity();

  bool valid() const noexcept { return triangle != Hit::kNoTriangle; }
};

/// Queue-work counters for the best-first point search. The micro bench uses
/// them to assert that bound-pruning actually shrinks the queue (pruned > 0).
struct KnnSearchStats {
  std::size_t pushed = 0;  ///< queue entries pushed
  std::size_t popped = 0;  ///< queue entries popped (visited)
  std::size_t pruned = 0;  ///< child pushes skipped by the shrinking bound
};

/// Query interface implemented by both the eager KdTree and the LazyKdTree.
/// Queries are const and safe to call from many threads concurrently (the
/// lazy tree synchronizes its internal expansion).
class KdTreeBase {
 public:
  virtual ~KdTreeBase() = default;

  /// Closest intersection along the ray, or an invalid Hit.
  virtual Hit closest_hit(const Ray& ray) const = 0;

  /// True if anything intersects (shadow-ray query; may be any primitive).
  virtual bool any_hit(const Ray& ray) const = 0;

  /// Appends (sorted, deduplicated) the ids of all triangles that actually
  /// intersect `box` — the range query of the paper's introduction.
  virtual void query_range(const AABB& box,
                           std::vector<std::uint32_t>& out) const = 0;

  /// Closest triangle to a point (best-first descent) — the nearest-neighbor
  /// query of the paper's introduction. Exact distance ties break toward the
  /// lowest triangle id, so every tree structure returns the same winner.
  virtual NearestResult nearest(const Vec3& point) const = 0;

  /// The k nearest triangles to `point` within `max_distance` (Euclidean),
  /// appended to `out` sorted ascending by (distance_sq, triangle id). The
  /// radius is inclusive; fewer than k results when the radius runs dry.
  void nearest_k(const Vec3& point, std::size_t k,
                 std::vector<NearestResult>& out,
                 float max_distance =
                     std::numeric_limits<float>::infinity()) const {
    if (k == 0) return;
    do_nearest_k(point, k, out, max_distance);
  }

  /// Closest triangle within a caller-supplied conservative radius: the
  /// best-first queue is seeded with the radius, so subtrees beyond it are
  /// pruned without ever being visited (fcpw's closest-point-with-max-radius
  /// query). Invalid result when nothing lies within `max_distance`.
  NearestResult nearest_within(const Vec3& point, float max_distance) const;

  virtual const AABB& bounds() const noexcept = 0;
  virtual std::span<const Triangle> triangles() const noexcept = 0;
  virtual TreeStats stats() const = 0;

 protected:
  /// Default implementation is brute force over triangles() (correct for any
  /// subclass); the concrete trees override it with the best-first search.
  virtual void do_nearest_k(const Vec3& point, std::size_t k,
                            std::vector<NearestResult>& out,
                            float max_distance) const;
};

/// Per-ray traversal work counters — the quantities the SAH models (CT ~
/// interior visits, CI ~ triangle tests). `closest_hit_counted` fills them;
/// the ablation benches use them to show how CI/CB reshape the
/// visits-vs-tests tradeoff.
struct TraversalCounters {
  std::size_t interior_visited = 0;
  std::size_t leaves_visited = 0;
  std::size_t triangles_tested = 0;

  TraversalCounters& operator+=(const TraversalCounters& o) noexcept {
    interior_visited += o.interior_visited;
    leaves_visited += o.leaves_visited;
    triangles_tested += o.triangles_tested;
    return *this;
  }
};

class KdTree final : public KdTreeBase {
 public:
  /// Assembles a tree from flat arrays (produced by a builder). `root` is the
  /// index of the root node inside `nodes`.
  KdTree(std::vector<Triangle> triangles, std::vector<KdNode> nodes,
         std::vector<std::uint32_t> prim_indices, std::uint32_t root,
         AABB bounds);

  Hit closest_hit(const Ray& ray) const override;
  bool any_hit(const Ray& ray) const override;
  /// closest_hit with work counters (identical result, slower; analysis
  /// only — the hot path stays uninstrumented).
  Hit closest_hit_counted(const Ray& ray, TraversalCounters& counters) const;
  void query_range(const AABB& box,
                   std::vector<std::uint32_t>& out) const override;
  NearestResult nearest(const Vec3& point) const override;
  /// nearest() with queue-work counters (identical result; analysis only).
  NearestResult nearest_counted(const Vec3& point,
                                KnnSearchStats& stats) const;
  const AABB& bounds() const noexcept override { return bounds_; }
  std::span<const Triangle> triangles() const noexcept override {
    return triangles_;
  }
  TreeStats stats() const override;

  std::span<const KdNode> nodes() const noexcept { return nodes_; }
  std::span<const std::uint32_t> prim_indices() const noexcept {
    return prim_indices_;
  }
  std::uint32_t root() const noexcept { return root_; }

 private:
  /// The two ray queries share one traversal/leaf-test core (below), so the
  /// counted and shadow paths can never diverge from the hot path.
  enum class HitQuery { kClosest, kAny };

  template <HitQuery M>
  Hit hit_core(const Ray& ray, TraversalCounters* counters) const;

  void do_nearest_k(const Vec3& point, std::size_t k,
                    std::vector<NearestResult>& out,
                    float max_distance) const override;
  void nearest_core(const Vec3& point, KnnCollector& collector,
                    KnnSearchStats* stats) const;

  std::vector<Triangle> triangles_;
  std::vector<KdNode> nodes_;
  std::vector<std::uint32_t> prim_indices_;
  std::uint32_t root_ = 0;
  AABB bounds_;
};

namespace traversal_detail {

/// Entry on the traversal stack: a deferred far child with its ray interval.
struct StackEntry {
  std::uint32_t node;
  float t_min;
  float t_max;
};

constexpr int kMaxStackDepth = 64;

}  // namespace traversal_detail

/// Computes TreeStats for any flat node/prim-index representation. `ct`/`ci`
/// weight the SAH-cost metric (defaults match the paper's fixed CT and base
/// CI). Exposed so the lazy tree and the tests can reuse it.
TreeStats compute_stats(std::span<const KdNode> nodes,
                        std::uint32_t root, const AABB& bounds,
                        double ct = 10.0, double ci = 17.0);

}  // namespace kdtune
