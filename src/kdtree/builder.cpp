#include "kdtree/builder.hpp"

#include <stdexcept>

namespace kdtune {

// Defined in the respective *_builder.cpp translation units.
std::unique_ptr<Builder> make_nodelevel_builder();
std::unique_ptr<Builder> make_nested_builder();
std::unique_ptr<Builder> make_inplace_builder();
std::unique_ptr<Builder> make_lazy_builder();
std::unique_ptr<Builder> make_balanced_builder();

std::string_view to_string(Algorithm a) noexcept {
  switch (a) {
    case Algorithm::kNodeLevel: return "node-level";
    case Algorithm::kNested: return "nested";
    case Algorithm::kInPlace: return "in-place";
    case Algorithm::kLazy: return "lazy";
    case Algorithm::kBalanced: return "balanced";
  }
  return "?";
}

Algorithm algorithm_from_string(std::string_view name) {
  if (name == "node-level" || name == "nodelevel") return Algorithm::kNodeLevel;
  if (name == "nested") return Algorithm::kNested;
  if (name == "in-place" || name == "inplace") return Algorithm::kInPlace;
  if (name == "lazy") return Algorithm::kLazy;
  if (name == "balanced" || name == "left-balanced") return Algorithm::kBalanced;
  throw std::invalid_argument("unknown algorithm: " + std::string(name));
}

std::vector<Algorithm> all_algorithms() {
  return {Algorithm::kNodeLevel, Algorithm::kNested, Algorithm::kInPlace,
          Algorithm::kLazy, Algorithm::kBalanced};
}

std::unique_ptr<Builder> make_builder(Algorithm a) {
  switch (a) {
    case Algorithm::kNodeLevel: return make_nodelevel_builder();
    case Algorithm::kNested: return make_nested_builder();
    case Algorithm::kInPlace: return make_inplace_builder();
    case Algorithm::kLazy: return make_lazy_builder();
    case Algorithm::kBalanced: return make_balanced_builder();
  }
  throw std::invalid_argument("unknown algorithm id");
}

}  // namespace kdtune
