#pragma once

// Binary (de)serialization of eager kd-trees. Building a full-size SAH tree
// costs seconds; applications with static geometry can build once, save, and
// memory-load on the next run. Two formats share the magic and a version
// word (little-endian, as written by the host):
//
// v1 — the builder layout (KdTree):
//   magic "KDTN", u32 version = 1,
//   AABB bounds (6 floats), u32 root,
//   u64 node count,   KdNode[]   (split, flags, a, b as u32 words)
//   u64 index count,  u32[]      (leaf primitive indices)
//   u64 tri count,    Triangle[] (9 floats each)
//
// v2 — the compact serving layout (CompactKdTree):
//   magic "KDTN", u32 version = 2,
//   AABB bounds (6 floats),
//   u64 node count,   CompactNode[] (8 bytes each, root at index 0)
//   u64 slot count,   u32[]         (leaf-ordered triangle ids)
//   u64 tri count,    Triangle[]
//   The per-leaf SoA intersection blocks are recomputed on load (they are a
//   pure function of triangles + leaf order), keeping files small.
//
// Lazy trees are intentionally not serializable: their value is *not* doing
// the work; expand_all() + rebuild covers the rare need.

#include <iosfwd>
#include <memory>
#include <string>

#include "kdtree/compact_tree.hpp"
#include "kdtree/tree.hpp"

namespace kdtune {

void save_tree(std::ostream& out, const KdTree& tree);
void save_tree_file(const std::string& path, const KdTree& tree);

/// Reads a v1 (builder-layout) file. Throws std::runtime_error on bad
/// magic/version/truncation; a v2 file is rejected with a pointer to
/// load_compact_tree.
std::unique_ptr<KdTree> load_tree(std::istream& in);
std::unique_ptr<KdTree> load_tree_file(const std::string& path);

/// Writes the compact serving layout (format v2).
void save_compact_tree(std::ostream& out, const CompactKdTree& tree);
void save_compact_tree_file(const std::string& path,
                            const CompactKdTree& tree);

/// Reads a compact tree. Accepts v2 directly and v1 for backward
/// compatibility (the loaded builder layout is re-emitted into the compact
/// layout). Throws std::runtime_error on bad magic/version/truncation.
std::unique_ptr<CompactKdTree> load_compact_tree(std::istream& in);
std::unique_ptr<CompactKdTree> load_compact_tree_file(const std::string& path);

}  // namespace kdtune
