#pragma once

// Binary (de)serialization of eager kd-trees. Building a full-size SAH tree
// costs seconds; applications with static geometry can build once, save, and
// memory-load on the next run. Two formats share the magic and a version
// word (little-endian, as written by the host):
//
// v1 — the builder layout (KdTree):
//   magic "KDTN", u32 version = 1,
//   AABB bounds (6 floats), u32 root,
//   u64 node count,   KdNode[]   (split, flags, a, b as u32 words)
//   u64 index count,  u32[]      (leaf primitive indices)
//   u64 tri count,    Triangle[] (9 floats each)
//
// v2 — the compact serving layout (CompactKdTree):
//   magic "KDTN", u32 version = 2,
//   AABB bounds (6 floats),
//   u64 node count,   CompactNode[] (8 bytes each, root at index 0)
//   u64 slot count,   u32[]         (leaf-ordered triangle ids)
//   u64 tri count,    Triangle[]
//   The per-leaf SoA intersection blocks are recomputed on load (they are a
//   pure function of triangles + leaf order), keeping files small.
//
// v3 — the wide serving layout (WideKdTree):
//   magic "KDTN", u32 version = 3, u32 width (4 or 8),
//   then the v2 compact body verbatim (the wide tree's shared source).
//   Wide nodes are re-collapsed on load — like the v2 SoA blocks they are a
//   pure function of the compact tree, and the collapse is deterministic, so
//   files stay small and v3 bodies remain readable as compact trees
//   (load_compact_tree skips the width word).
//
// Lazy trees are intentionally not serializable: their value is *not* doing
// the work; expand_all() + rebuild covers the rare need.

#include <iosfwd>
#include <memory>
#include <string>

#include "kdtree/compact_tree.hpp"
#include "kdtree/tree.hpp"
#include "kdtree/wide_tree.hpp"

namespace kdtune {

void save_tree(std::ostream& out, const KdTree& tree);
void save_tree_file(const std::string& path, const KdTree& tree);

/// Reads a v1 (builder-layout) file. Throws std::runtime_error on bad
/// magic/version/truncation; a v2 file is rejected with a pointer to
/// load_compact_tree.
std::unique_ptr<KdTree> load_tree(std::istream& in);
std::unique_ptr<KdTree> load_tree_file(const std::string& path);

/// Writes the compact serving layout (format v2).
void save_compact_tree(std::ostream& out, const CompactKdTree& tree);
void save_compact_tree_file(const std::string& path,
                            const CompactKdTree& tree);

/// Reads a compact tree. Accepts v2 directly, v1 for backward compatibility
/// (the loaded builder layout is re-emitted into the compact layout), and v3
/// (the wide layout's compact body, ignoring the recorded width). Throws
/// std::runtime_error on bad magic/version/truncation.
std::unique_ptr<CompactKdTree> load_compact_tree(std::istream& in);
std::unique_ptr<CompactKdTree> load_compact_tree_file(const std::string& path);

/// Writes the wide serving layout (format v3: recorded width + the shared
/// compact body).
void save_wide_tree(std::ostream& out, const WideTreeBase& tree);
void save_wide_tree_file(const std::string& path, const WideTreeBase& tree);

/// Reads a wide tree: v3 rebuilds the recorded width; v2 and v1 load as a
/// compact (resp. builder) tree and collapse to `fallback_width`. Throws
/// std::runtime_error on bad magic/version/truncation or an unsupported
/// recorded width.
std::unique_ptr<WideTreeBase> load_wide_tree(std::istream& in,
                                             int fallback_width = 4);
std::unique_ptr<WideTreeBase> load_wide_tree_file(const std::string& path,
                                                  int fallback_width = 4);

}  // namespace kdtune
