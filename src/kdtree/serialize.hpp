#pragma once

// Binary (de)serialization of eager kd-trees. Building a full-size SAH tree
// costs seconds; applications with static geometry can build once, save, and
// memory-load on the next run. Format (little-endian, as written by the
// host):
//
//   magic "KDTN", u32 version,
//   AABB bounds (6 floats), u32 root,
//   u64 node count,   KdNode[]   (split, flags, a, b as u32 words)
//   u64 index count,  u32[]      (leaf primitive indices)
//   u64 tri count,    Triangle[] (9 floats each)
//
// Lazy trees are intentionally not serializable: their value is *not* doing
// the work; expand_all() + rebuild covers the rare need.

#include <iosfwd>
#include <memory>
#include <string>

#include "kdtree/tree.hpp"

namespace kdtune {

void save_tree(std::ostream& out, const KdTree& tree);
void save_tree_file(const std::string& path, const KdTree& tree);

/// Throws std::runtime_error on bad magic/version/truncation.
std::unique_ptr<KdTree> load_tree(std::istream& in);
std::unique_ptr<KdTree> load_tree_file(const std::string& path);

}  // namespace kdtune
