#pragma once

// The tunable build configuration — exactly the parameter set of the paper's
// Tables I/II. The autotuner registers pointers to these fields; builders
// read them per build.

#include <cstddef>
#include <cstdint>
#include <ostream>

namespace kdtune {

struct BuildConfig {
  // --- Tunable parameters (Table I) -------------------------------------
  /// CI: SAH cost of intersecting a triangle. Tuning range [3, 101].
  std::int64_t ci = 17;
  /// CB: SAH cost of duplicating a primitive across a split. Range [0, 60].
  std::int64_t cb = 10;
  /// S: maximum number of subtrees per thread; bounds the task-spawn depth of
  /// the node-level/nested builders. Range [1, 8].
  std::int64_t s = 3;
  /// R: minimal resolution of a lazy node (primitive count below which
  /// construction is deferred). Range [16, 8192], powers of two.
  std::int64_t r = 4096;

  // --- Fixed constants ----------------------------------------------------
  /// CT: cost of traversing an inner node. CI and CB are only meaningful
  /// relative to CT, so the paper fixes it at 10.
  static constexpr double kCt = 10.0;

  // --- Non-tunable build controls ------------------------------------------
  /// Hard recursion cap; 0 = automatic (8 + 1.3 * log2(n), the standard
  /// kd-tree depth bound) as a safety net against adversarial geometry.
  int max_depth = 0;

  /// Number of SAH bins used by the breadth-first (in-place / lazy) builders.
  int bin_count = 32;

  /// Wald & Havran's empty-space bonus: a plane that cuts off an empty child
  /// has its cost scaled by (1 - empty_bonus). 0 disables (the paper's
  /// equation 1 has no bonus term); the ablation bench sweeps it.
  double empty_bonus = 0.0;

  /// "Perfect splits": re-clip straddling triangles to the child boxes so
  /// later SAH plane positions stay tight. Disabling falls back to plain
  /// AABB intersection (faster partitioning, looser trees) — an ablation.
  bool clip_straddlers = true;

  /// Nested builder: minimum primitives in a node before intra-node
  /// parallelism (the chunked prefix operations) pays for itself.
  std::size_t nested_threshold = 8192;

  /// BFS builders: minimum primitives in a node before its binning/scatter
  /// phases parallelize across primitives rather than across nodes.
  std::size_t wide_node_threshold = 65536;

  int resolved_max_depth(std::size_t prim_count) const noexcept;

  friend std::ostream& operator<<(std::ostream& os, const BuildConfig& c) {
    return os << "{CI=" << c.ci << ", CB=" << c.cb << ", S=" << c.s
              << ", R=" << c.r << '}';
  }

  friend bool operator==(const BuildConfig& a, const BuildConfig& b) noexcept {
    return a.ci == b.ci && a.cb == b.cb && a.s == b.s && a.r == b.r &&
           a.max_depth == b.max_depth && a.bin_count == b.bin_count &&
           a.empty_bonus == b.empty_bonus &&
           a.clip_straddlers == b.clip_straddlers &&
           a.nested_threshold == b.nested_threshold &&
           a.wide_node_threshold == b.wide_node_threshold;
  }
};

/// The paper's manually crafted base configuration
/// C_base = (17, 10, 3, 2^12), drawn from literature best practices.
inline constexpr BuildConfig kBaseConfig{};

}  // namespace kdtune
