#include "kdtree/tree.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>
#include <utility>

#include "geom/closest_point.hpp"
#include "geom/intersect.hpp"
#include "kdtree/knn.hpp"

namespace kdtune {

KdTree::KdTree(std::vector<Triangle> triangles, std::vector<KdNode> nodes,
               std::vector<std::uint32_t> prim_indices, std::uint32_t root,
               AABB bounds)
    : triangles_(std::move(triangles)),
      nodes_(std::move(nodes)),
      prim_indices_(std::move(prim_indices)),
      root_(root),
      bounds_(bounds) {}

namespace {

// Shared stack traversal over a flat node array. `LeafFn(node, t_max)` tests
// the leaf's primitives and returns true to terminate traversal early; it may
// shrink the ray interval by returning the new t_max through its reference
// parameter.
template <typename LeafFn>
void traverse(std::span<const KdNode> nodes, std::uint32_t root,
              const AABB& bounds, const Ray& ray, LeafFn&& leaf_fn,
              TraversalCounters* counters = nullptr) {
  float t_min, t_max;
  if (!intersect_aabb(ray, bounds, t_min, t_max)) return;

  using traversal_detail::StackEntry;
  StackEntry stack[traversal_detail::kMaxStackDepth];
  int sp = 0;
  std::uint32_t current = root;

  for (;;) {
    const KdNode& node = nodes[current];
    if (node.is_leaf()) {
      if (counters != nullptr) ++counters->leaves_visited;
      if (leaf_fn(node, t_min, t_max)) return;
      if (sp == 0) return;
      --sp;
      current = stack[sp].node;
      t_min = stack[sp].t_min;
      t_max = stack[sp].t_max;
      continue;
    }

    if (counters != nullptr) ++counters->interior_visited;
    const Axis axis = node.axis();
    const float origin = ray.origin[axis];
    const float inv_dir = ray.inv_dir[axis];
    const float t_split = (node.split - origin) * inv_dir;

    // Near child contains the ray origin side of the plane; ties broken by
    // direction so rays lying in the plane still make progress.
    std::uint32_t near = node.a;
    std::uint32_t far = node.b;
    const bool below =
        origin < node.split || (origin == node.split && ray.dir[axis] <= 0.0f);
    if (!below) std::swap(near, far);

    if (std::isnan(t_split)) {
      // Ray lies exactly in the split plane (dir[axis] == 0, origin on the
      // plane): 0 * inf above. Visit both children over the full interval.
      assert(sp < traversal_detail::kMaxStackDepth &&
             "kd traversal stack overflow (depth clamp violated)");
      if (sp < traversal_detail::kMaxStackDepth) {
        stack[sp++] = {far, t_min, t_max};
      }
      current = near;
    } else if (t_split > t_max || t_split <= 0.0f) {
      current = near;
    } else if (t_split < t_min) {
      current = far;
    } else {
      assert(sp < traversal_detail::kMaxStackDepth &&
             "kd traversal stack overflow (depth clamp violated)");
      if (sp < traversal_detail::kMaxStackDepth) {
        stack[sp++] = {far, t_split, t_max};
      }
      current = near;
      t_max = t_split;
    }
  }
}

}  // namespace

// The one leaf-test core behind closest_hit, closest_hit_counted and
// any_hit. kClosest shrinks the ray interval and keeps the nearest hit;
// kAny stops at the first intersection over the original interval.
template <KdTree::HitQuery M>
Hit KdTree::hit_core(const Ray& ray, TraversalCounters* counters) const {
  Hit best;
  Ray r = ray;
  traverse(
      nodes_, root_, bounds_, ray,
      [&](const KdNode& node, float /*t_min*/, float t_max) {
        if (counters != nullptr) counters->triangles_tested += node.b;
        for (std::uint32_t k = 0; k < node.b; ++k) {
          const std::uint32_t tri = prim_indices_[node.a + k];
          float t, u, v;
          if constexpr (M == HitQuery::kAny) {
            if (intersect(ray, triangles_[tri], t, u, v)) {
              best = {t, tri, u, v};
              return true;
            }
          } else {
            if (intersect(r, triangles_[tri], t, u, v)) {
              best = {t, tri, u, v};
              r.t_max = t;
            }
          }
        }
        if constexpr (M == HitQuery::kAny) return false;
        // A hit inside this leaf's interval cannot be beaten by nodes
        // further along the ray.
        return best.valid() && best.t <= t_max;
      },
      counters);
  return best;
}

Hit KdTree::closest_hit(const Ray& ray) const {
  return hit_core<HitQuery::kClosest>(ray, nullptr);
}

Hit KdTree::closest_hit_counted(const Ray& ray,
                                TraversalCounters& counters) const {
  return hit_core<HitQuery::kClosest>(ray, &counters);
}

bool KdTree::any_hit(const Ray& ray) const {
  return hit_core<HitQuery::kAny>(ray, nullptr).valid();
}

void KdTree::query_range(const AABB& box,
                         std::vector<std::uint32_t>& out) const {
  const std::size_t start = out.size();
  if (nodes_.empty() || !bounds_.overlaps(box)) return;

  struct Frame {
    std::uint32_t node;
    AABB node_box;
  };
  std::vector<Frame> stack{{root_, bounds_}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const KdNode& node = nodes_[f.node];
    if (node.is_leaf()) {
      for (std::uint32_t k = 0; k < node.b; ++k) {
        const std::uint32_t tri = prim_indices_[node.a + k];
        // Exact filter: the clipped geometry must reach into the query box.
        if (box.overlaps(triangles_[tri].bounds()) &&
            !clipped_bounds(triangles_[tri], box).empty()) {
          out.push_back(tri);
        }
      }
      continue;
    }
    const auto [lbox, rbox] = f.node_box.split(node.axis(), node.split);
    if (box.overlaps(lbox)) stack.push_back({node.a, lbox});
    if (box.overlaps(rbox)) stack.push_back({node.b, rbox});
  }

  // Straddlers live in several leaves: deduplicate the appended range.
  std::sort(out.begin() + start, out.end());
  out.erase(std::unique(out.begin() + start, out.end()), out.end());
}

void KdTree::nearest_core(const Vec3& point, KnnCollector& collector,
                          KnnSearchStats* stats) const {
  if (nodes_.empty()) return;

  struct Entry {
    float dist_sq;
    std::uint32_t node;
    AABB box;

    bool operator>(const Entry& o) const noexcept {
      return dist_sq > o.dist_sq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  const float root_dist = distance_squared(point, bounds_);
  if (root_dist > collector.bound()) return;  // radius seed prunes the root
  queue.push({root_dist, root_, bounds_});
  if (stats != nullptr) ++stats->pushed;

  while (!queue.empty()) {
    const Entry entry = queue.top();
    queue.pop();
    if (stats != nullptr) ++stats->popped;
    // Strictly farther entries cannot contribute; entries at exactly the
    // bound still can (an equal-distance, lower-id tie) — see knn.hpp.
    if (entry.dist_sq > collector.bound()) break;

    const KdNode& node = nodes_[entry.node];
    if (node.is_leaf()) {
      for (std::uint32_t k = 0; k < node.b; ++k) {
        const std::uint32_t tri = prim_indices_[node.a + k];
        const Vec3 cp = closest_point_on_triangle(point, triangles_[tri]);
        collector.offer(tri, cp, length_squared(point - cp));
      }
      continue;
    }
    const auto [lbox, rbox] = entry.box.split(node.axis(), node.split);
    const float dl = distance_squared(point, lbox);
    const float dr = distance_squared(point, rbox);
    // Push-time pruning: children already beyond the bound never enter the
    // queue (instead of being pushed and discarded at pop time).
    if (dl <= collector.bound()) {
      queue.push({dl, node.a, lbox});
      if (stats != nullptr) ++stats->pushed;
    } else if (stats != nullptr) {
      ++stats->pruned;
    }
    if (dr <= collector.bound()) {
      queue.push({dr, node.b, rbox});
      if (stats != nullptr) ++stats->pushed;
    } else if (stats != nullptr) {
      ++stats->pruned;
    }
  }
}

NearestResult KdTree::nearest(const Vec3& point) const {
  KnnCollector collector(1, std::numeric_limits<float>::infinity());
  nearest_core(point, collector, nullptr);
  return collector.best();
}

NearestResult KdTree::nearest_counted(const Vec3& point,
                                      KnnSearchStats& stats) const {
  KnnCollector collector(1, std::numeric_limits<float>::infinity());
  nearest_core(point, collector, &stats);
  return collector.best();
}

void KdTree::do_nearest_k(const Vec3& point, std::size_t k,
                          std::vector<NearestResult>& out,
                          float max_distance) const {
  KnnCollector collector(k, max_distance);
  nearest_core(point, collector, nullptr);
  collector.take_sorted(out);
}

NearestResult KdTreeBase::nearest_within(const Vec3& point,
                                         float max_distance) const {
  std::vector<NearestResult> out;
  do_nearest_k(point, 1, out, max_distance);
  return out.empty() ? NearestResult{} : out.front();
}

void KdTreeBase::do_nearest_k(const Vec3& point, std::size_t k,
                              std::vector<NearestResult>& out,
                              float max_distance) const {
  // Brute force over the stored soup: correct for any subclass, and the
  // semantics every override must reproduce exactly (including the
  // lowest-id tie-break and the inclusive radius).
  KnnCollector collector(k, max_distance);
  const std::span<const Triangle> tris = triangles();
  for (std::uint32_t i = 0; i < tris.size(); ++i) {
    if (tris[i].degenerate()) continue;
    const Vec3 cp = closest_point_on_triangle(point, tris[i]);
    collector.offer(i, cp, length_squared(point - cp));
  }
  collector.take_sorted(out);
}

TreeStats KdTree::stats() const {
  return compute_stats(nodes_, root_, bounds_);
}

TreeStats compute_stats(std::span<const KdNode> nodes, std::uint32_t root,
                        const AABB& bounds, double ct, double ci) {
  TreeStats s;
  if (nodes.empty()) return s;

  struct Frame {
    std::uint32_t node;
    AABB box;
    std::size_t depth;
  };
  std::vector<Frame> stack{{root, bounds, 1}};
  const double root_area = bounds.surface_area();
  std::size_t nonempty_prims = 0;
  std::size_t nonempty_leaves = 0;

  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const KdNode& node = nodes[f.node];
    ++s.node_count;
    s.max_depth = std::max(s.max_depth, f.depth);
    const double p =
        root_area > 0.0 ? f.box.surface_area() / root_area : 0.0;

    if (node.is_leaf() || node.is_deferred()) {
      if (node.is_deferred()) {
        ++s.deferred_count;
      } else {
        ++s.leaf_count;
        if (node.b == 0) ++s.empty_leaf_count;
      }
      s.prim_refs += node.b;
      if (node.b > 0) {
        nonempty_prims += node.b;
        ++nonempty_leaves;
      }
      s.sah_cost += p * ci * static_cast<double>(node.b);
      continue;
    }

    s.sah_cost += p * ct;
    const auto [lbox, rbox] = f.box.split(node.axis(), node.split);
    stack.push_back({node.a, lbox, f.depth + 1});
    stack.push_back({node.b, rbox, f.depth + 1});
  }

  s.avg_leaf_prims = nonempty_leaves > 0
                         ? static_cast<double>(nonempty_prims) /
                               static_cast<double>(nonempty_leaves)
                         : 0.0;
  return s;
}

}  // namespace kdtune
