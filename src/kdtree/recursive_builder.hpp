#pragma once

// Depth-first recursive construction engine. Three builders are thin
// configurations of it:
//   - sequential SAH sweep     (task_depth = 0, sequential strategy)
//   - node-level parallel      (task_depth from S, sequential strategy)
//   - nested parallel          (task_depth from S, parallel intra-node
//                               strategy: Choi et al.'s chunked prefix ops)

#include <memory>
#include <span>

#include "kdtree/build_common.hpp"
#include "kdtree/builder.hpp"
#include "kdtree/tree.hpp"
#include "parallel/thread_pool.hpp"

namespace kdtune {

/// Per-node split-search/partition policy. The default implementation is the
/// sequential Wald & Havran sweep from build_common.
class SplitStrategy {
 public:
  virtual ~SplitStrategy() = default;

  virtual SplitCandidate find_best_split(const SahParams& sah,
                                         const AABB& node_bounds,
                                         std::span<const PrimRef> prims,
                                         ThreadPool& pool) const;

  virtual void partition(std::span<const PrimRef> prims,
                         std::span<const Triangle> tris,
                         const SplitCandidate& split, const AABB& left_box,
                         const AABB& right_box, std::vector<PrimRef>& left,
                         std::vector<PrimRef>& right, bool clip_straddlers,
                         ThreadPool& pool) const;
};

/// Maximum task-spawn depth for a given S (max subtrees per thread) and pool
/// width: tasks are spawned while depth < task_depth, producing at most
/// 2^task_depth ~= S * threads concurrent subtrees (paper §IV-A).
int task_depth_for(std::int64_t s, unsigned concurrency) noexcept;

/// Runs the engine. `task_depth` = 0 builds fully sequentially.
std::unique_ptr<KdTree> recursive_build_tree(std::span<const Triangle> tris,
                                             const BuildConfig& config,
                                             ThreadPool& pool, int task_depth,
                                             const SplitStrategy& strategy);

}  // namespace kdtune
