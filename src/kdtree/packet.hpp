#pragma once

// Coherent ray-packet traversal. Interactive ray tracers trace camera-tile
// packets instead of single rays: coherent rays mostly take the same branch,
// so one node visit serves many rays. This is the classic masked kd-tree
// packet traversal — per-ray [t_min, t_max] intervals plus an active mask;
// when a packet splits across a plane, the far side is deferred with the
// subset mask.
//
// Packets are a pure traversal optimization: results are bit-identical to
// per-ray traversal (the tests enforce this).

#include <cstdint>
#include <span>

#include "kdtree/compact_tree.hpp"
#include "kdtree/tree.hpp"
#include "kdtree/wide_tree.hpp"

namespace kdtune {

/// Upper packet width; an 8x8 camera tile.
inline constexpr std::size_t kMaxPacketSize = 64;

/// Traces up to kMaxPacketSize rays through an eager tree, writing one Hit
/// per ray. `rays.size()` must equal `hits.size()`.
void closest_hit_packet(const KdTree& tree, std::span<const Ray> rays,
                        std::span<Hit> hits);

/// Packet traversal over the compact serving layout; results are
/// bit-identical to the KdTree overload and to per-ray traversal.
void closest_hit_packet(const CompactKdTree& tree, std::span<const Ray> rays,
                        std::span<Hit> hits);

/// Wide trees spend their SIMD lanes *within* a ray (one ray vs. all child
/// slabs of a node), so the packet entry point runs the wide per-ray kernel
/// over the packet — same results, and the lanes are already busy.
void closest_hit_packet(const WideTreeBase& tree, std::span<const Ray> rays,
                        std::span<Hit> hits);

/// Convenience fallback for any KdTreeBase: uses the real packet traversal
/// for eager/compact trees, the wide per-ray kernel for wide trees, and
/// per-ray traversal otherwise (lazy trees mutate during traversal, which
/// packet masking does not model).
void closest_hit_packet_any(const KdTreeBase& tree, std::span<const Ray> rays,
                            std::span<Hit> hits);

}  // namespace kdtune
