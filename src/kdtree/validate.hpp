#pragma once

// Structural validation used by the test suite's property checks. Not part of
// the hot path — O(leaves x primitives) in completeness mode.

#include <string>
#include <vector>

#include "kdtree/tree.hpp"

namespace kdtune {

struct ValidationResult {
  bool ok = true;
  std::vector<std::string> errors;

  void fail(std::string msg) {
    ok = false;
    if (errors.size() < 32) errors.push_back(std::move(msg));
  }
};

/// Checks structural invariants of an eager tree:
///   - node/prim indices in range, the node graph is a tree (no sharing),
///   - every leaf primitive actually overlaps the leaf's box (soundness),
///   - with `check_completeness`: every triangle overlapping a leaf box (by
///     clipped bounds) is listed in that leaf — the property traversal
///     correctness rests on.
ValidationResult validate_tree(const KdTree& tree, bool check_completeness);

}  // namespace kdtune
