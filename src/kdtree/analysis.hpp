#pragma once

// Tree-quality analysis beyond the scalar TreeStats: leaf-depth and
// leaf-population histograms, duplication factor, and a balance measure.
// Used by `kdtune_cli inspect` and the ablation discussions — e.g. how the
// tuned CI reshapes the leaf-size distribution.

#include <cstdint>
#include <string>
#include <vector>

#include "kdtree/tree.hpp"

namespace kdtune {

struct TreeAnalysis {
  /// histogram[d] = number of leaves at depth d (root = depth 0).
  std::vector<std::size_t> leaf_depth_histogram;
  /// histogram[k] = number of leaves holding k primitives (capped; the last
  /// bucket aggregates everything >= its index).
  std::vector<std::size_t> leaf_size_histogram;
  /// Total primitive references / distinct primitives referenced:
  /// 1.0 = no duplication; kd-trees typically land in 1.3 - 2.5.
  double duplication_factor = 0.0;
  /// Mean leaf depth / log2(leaf count): 1.0 = perfectly balanced.
  double balance = 0.0;

  std::string to_string() const;
};

/// Analyzes an eager tree. `max_leaf_size_bucket` bounds the size histogram.
TreeAnalysis analyze_tree(const KdTree& tree,
                          std::size_t max_leaf_size_bucket = 32);

}  // namespace kdtune
