#pragma once

// Cache-compact query fast path — the immutable "serving layout".
//
// Any built eager KdTree can be re-emitted into a CompactKdTree, a read-only
// structure tuned purely for query throughput (PBRT-style node packing plus
// the cache-conscious layout discipline of ParGeo / Wald's in-place trees):
//
//   * Nodes shrink from 16 to 8 bytes and are re-emitted in depth-first
//     order, so the left child of node i is *implicit* at i + 1 (one fewer
//     word to load, and the near-child descent walks forward through memory).
//     The second word packs axis/leaf into its 2 low bits and the right-child
//     index (interior) or primitive count (leaf) into the upper 30 bits.
//   * Primitive storage is rewritten into leaf-order contiguous blocks: each
//     leaf's triangles are one linear scan, with no `prim_indices[i] ->
//     triangles[tri]` double indirection on the hot path. Blocks store
//     precomputed Möller–Trumbore base/edge vectors SoA (per block), so the
//     per-triangle test starts from contiguous loads.
//   * Single-triangle leaves are inlined: the node stores the triangle id
//     directly and skips the block lookup entirely.
//
// Queries return bit-identical results to the source KdTree (the parity test
// suite enforces this): same traversal decisions, same per-leaf test order,
// and the Möller–Trumbore core is shared (geom/triangle.hpp).

#include <cstdint>
#include <vector>

#include "kdtree/tree.hpp"

namespace kdtune {

/// 8-byte packed node. DFS order: left child of node i is node i + 1.
struct CompactNode {
  static constexpr std::uint32_t kLeafTag = 3;
  /// Upper bound on node index / leaf count imposed by the 30-bit field.
  static constexpr std::uint32_t kMaxPayload = (1u << 30) - 1;

  union {
    float split;         ///< interior: plane offset on `axis()`
    std::uint32_t prim;  ///< leaf, count == 1: triangle id (inlined);
                         ///< leaf, count != 1: first slot of its leaf block
  };
  std::uint32_t meta = kLeafTag;  ///< bits 0-1: axis (0/1/2) or 3 = leaf;
                                  ///< bits 2-31: right child / prim count

  bool is_leaf() const noexcept { return (meta & 3u) == kLeafTag; }
  Axis axis() const noexcept { return static_cast<Axis>(meta & 3u); }
  std::uint32_t right_child() const noexcept { return meta >> 2; }
  std::uint32_t prim_count() const noexcept { return meta >> 2; }

  static CompactNode make_leaf(std::uint32_t prim,
                               std::uint32_t count) noexcept {
    CompactNode n;
    n.prim = prim;
    n.meta = (count << 2) | kLeafTag;
    return n;
  }

  static CompactNode make_interior(Axis axis, float split,
                                   std::uint32_t right) noexcept {
    CompactNode n;
    n.split = split;
    n.meta = (right << 2) | static_cast<std::uint32_t>(axis);
    return n;
  }
};
static_assert(sizeof(CompactNode) == 8, "CompactNode must pack to 8 bytes");

class CompactKdTree final : public KdTreeBase {
 public:
  /// Re-emits `source` into the compact layout. The source tree is left
  /// untouched; triangles are copied so the compact tree is self-contained.
  /// Throws std::invalid_argument if the source exceeds the 30-bit node
  /// budget or contains deferred nodes.
  explicit CompactKdTree(const KdTree& source);

  /// Assembles from raw parts (deserialization). `leaf_tris` is the
  /// leaf-ordered triangle-id array; the SoA blocks are recomputed. Throws
  /// std::runtime_error if the arrays are structurally inconsistent.
  CompactKdTree(std::vector<Triangle> triangles,
                std::vector<CompactNode> nodes,
                std::vector<std::uint32_t> leaf_tris, AABB bounds);

  Hit closest_hit(const Ray& ray) const override;
  bool any_hit(const Ray& ray) const override;
  /// closest_hit with work counters; counts match KdTree::closest_hit_counted
  /// exactly (same visits, same triangle tests).
  Hit closest_hit_counted(const Ray& ray, TraversalCounters& counters) const;
  void query_range(const AABB& box,
                   std::vector<std::uint32_t>& out) const override;
  NearestResult nearest(const Vec3& point) const override;
  const AABB& bounds() const noexcept override { return bounds_; }
  // (nearest_k / nearest_within resolve through do_nearest_k below.)
  std::span<const Triangle> triangles() const noexcept override {
    return triangles_;
  }
  TreeStats stats() const override;

  std::span<const CompactNode> nodes() const noexcept { return nodes_; }
  /// Leaf-ordered triangle ids for all leaves with count >= 2.
  std::span<const std::uint32_t> leaf_tris() const noexcept {
    return leaf_tris_;
  }
  /// The per-block SoA triangle slabs (see soa_ below). Exposed for the wide
  /// traversal, which intersects this tree's leaves directly.
  std::span<const float> leaf_soa() const noexcept { return soa_; }

  /// Intersects `ray` against leaf `node` (which must be a leaf), shrinking
  /// `ray.t_max` on hits and updating `best`. Exposed for the packet
  /// traversal, which shares the leaf blocks.
  void intersect_leaf(const CompactNode& node, Ray& ray, Hit& best) const;

 private:
  enum class HitQuery { kClosest, kAny };

  /// kCounted templates the instrumentation out of the uncounted hot paths
  /// entirely (no per-node branch on a counters pointer).
  template <HitQuery M, bool kCounted>
  Hit hit_core(const Ray& ray, TraversalCounters* counters) const;

  void do_nearest_k(const Vec3& point, std::size_t k,
                    std::vector<NearestResult>& out,
                    float max_distance) const override;
  void nearest_core(const Vec3& point, KnnCollector& collector) const;

  /// Recomputes the per-block SoA arrays from triangles_ + leaf_tris_ and
  /// validates node/block structure. Shared by both constructors.
  void build_blocks_and_validate();

  std::vector<Triangle> triangles_;
  std::vector<CompactNode> nodes_;
  std::vector<std::uint32_t> leaf_tris_;
  /// 9 floats per leaf-block slot, SoA within each block: for a block of n
  /// triangles starting at slot s, floats [9s, 9s + 9n) hold
  /// [a.x * n][a.y * n][a.z * n][e1.x * n]...[e2.z * n].
  std::vector<float> soa_;
  AABB bounds_;
};

}  // namespace kdtune
