// Lazy construction builder (paper §IV-D): the in-place BFS phase stops
// refining once a node holds fewer than R primitives, leaving it deferred;
// LazyKdTree expands deferred nodes on first ray contact. On heavily occluded
// scenes (the Fairy Forest corner case) most subtrees are never built.

#include "kdtree/bfs_builder.hpp"
#include "kdtree/lazy_tree.hpp"

namespace kdtune {

namespace {

class LazyBuilder final : public Builder {
 public:
  std::string_view name() const noexcept override { return "lazy"; }

  bool uses_lazy_resolution() const noexcept override { return true; }

  std::unique_ptr<KdTreeBase> build(std::span<const Triangle> tris,
                                    const BuildConfig& config,
                                    ThreadPool& pool) const override {
    BfsResult r = bfs_build(tris, config, pool, /*defer_below=*/config.r);
    return std::make_unique<LazyKdTree>(
        std::vector<Triangle>(tris.begin(), tris.end()),
        std::move(r.tree.nodes), std::move(r.tree.prim_indices), r.tree.root,
        r.bounds, std::move(r.deferred_bounds), config);
  }
};

}  // namespace

std::unique_ptr<Builder> make_lazy_builder();

std::unique_ptr<Builder> make_lazy_builder() {
  return std::make_unique<LazyBuilder>();
}

}  // namespace kdtune
