// Spatial-median builder: splits at the midpoint of the longest axis until a
// small leaf size or the depth cap. Not part of the paper's evaluation — it
// exists as a sanity baseline (how much does the SAH actually buy?) for the
// ablation benchmarks, and as a second traversal oracle in tests.

#include "kdtree/recursive_builder.hpp"

namespace kdtune {

namespace {

class MedianSplitStrategy final : public SplitStrategy {
 public:
  SplitCandidate find_best_split(const SahParams&, const AABB& node_bounds,
                                 std::span<const PrimRef> prims,
                                 ThreadPool&) const override {
    SplitCandidate out;
    if (prims.size() <= 8) return out;  // invalid -> leaf
    const Axis axis = node_bounds.longest_axis();
    const float pos = node_bounds.center()[axis];
    if (pos <= node_bounds.lo[axis] || pos >= node_bounds.hi[axis]) return out;

    std::size_t nl = 0, nr = 0;
    for (const PrimRef& p : prims) {
      if (p.bounds.lo[axis] < pos) ++nl;
      if (p.bounds.hi[axis] > pos) ++nr;
    }
    // Refuse splits that separate nothing (all primitives straddle).
    if (nl == prims.size() && nr == prims.size()) return out;

    out.axis = axis;
    out.position = pos;
    out.planar_left = true;
    out.nl = nl;
    out.nr = nr;
    out.cost = 0.0;  // always accepted; termination comes from leaf size/depth
    return out;
  }
};

class MedianBuilder final : public Builder {
 public:
  std::string_view name() const noexcept override { return "median"; }

  std::unique_ptr<KdTreeBase> build(std::span<const Triangle> tris,
                                    const BuildConfig& config,
                                    ThreadPool& pool) const override {
    static const MedianSplitStrategy strategy;
    return recursive_build_tree(tris, config, pool, /*task_depth=*/0, strategy);
  }
};

}  // namespace

std::unique_ptr<Builder> make_median_builder() {
  return std::make_unique<MedianBuilder>();
}

}  // namespace kdtune
