#pragma once

// Runtime CPU-feature detection for the wide traversal kernels.
//
// The 4-/8-wide node layouts are fixed at tree build; the *kernel* that tests
// a ray against a node's child slabs is picked per tree from the host's
// instruction set: AVX2 where available (and compiled in — the AVX2 TU is
// gated on compiler support), SSE2 on any x86-64, NEON on AArch64, and a
// portable scalar loop everywhere else. The scalar kernel is semantically
// identical to the vector ones (same conservative NaN handling), so forcing
// it via KDTUNE_SIMD=scalar must not change a single query result — CI runs
// the parity suite under that override.

#include <string>

namespace kdtune {

/// Kernel instruction-set tiers, ordered weakest-first within each
/// architecture (scalar < sse < avx2 on x86; scalar < neon on ARM).
enum class SimdLevel : int {
  kScalar = 0,
  kSse = 1,
  kAvx2 = 2,
  kNeon = 3,
};

inline const char* to_string(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kSse: return "sse";
    case SimdLevel::kAvx2: return "avx2";
    case SimdLevel::kNeon: return "neon";
  }
  return "scalar";
}

/// Parses a KDTUNE_SIMD value; returns false on an unknown name. Exposed for
/// the unit tests.
bool simd_level_from_string(const std::string& name, SimdLevel& out) noexcept;

/// The strongest kernel tier this *binary* contains (compile-time fact:
/// kAvx2 only when the AVX2 TU was built, kSse on x86, kNeon on ARM NEON,
/// else kScalar).
SimdLevel simd_compiled_level() noexcept;

/// The kernel tier wide trees built in this process use: the weaker of what
/// the CPU supports and what the binary contains, further lowered by the
/// KDTUNE_SIMD environment override (scalar|sse|avx2|neon). The override can
/// only *lower* the tier — requesting an unsupported level clamps down.
/// Detection (and the env read) happens once and is cached.
SimdLevel detect_simd_level() noexcept;

}  // namespace kdtune
