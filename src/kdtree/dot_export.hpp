#pragma once

// Graphviz export of (small) kd-trees, for debugging and documentation:
// interior nodes show axis/offset, leaves show their primitive count.
//   dot -Tsvg tree.dot -o tree.svg

#include <iosfwd>
#include <string>

#include "kdtree/tree.hpp"

namespace kdtune {

struct DotOptions {
  /// Nodes beyond this depth are collapsed into "..." placeholders so big
  /// trees stay renderable. 0 = no limit.
  std::size_t max_depth = 8;
  /// Include each node's box volume share as a tooltip-style label.
  bool show_bounds = false;
};

void export_dot(std::ostream& out, const KdTree& tree, DotOptions opts = {});
void export_dot_file(const std::string& path, const KdTree& tree,
                     DotOptions opts = {});

}  // namespace kdtune
