#pragma once

// Machinery shared by the recursive (depth-first) builders: primitive
// references with clipped bounds, the per-node SAH event sweep (Wald & Havran
// style plane selection with "perfect split" clipping), classification /
// partitioning, and the pointer-tree -> flat-array flattening step.

#include <memory>
#include <span>
#include <vector>

#include "geom/aabb.hpp"
#include "geom/triangle.hpp"
#include "kdtree/nodes.hpp"
#include "kdtree/sah.hpp"

namespace kdtune {

/// A primitive inside one build node: triangle id + bounds clipped to the
/// node ("perfect splits" keep SAH event positions tight).
struct PrimRef {
  std::uint32_t tri = 0;
  AABB bounds;
};

std::vector<PrimRef> make_prim_refs(std::span<const Triangle> tris);

AABB bounds_of_refs(std::span<const PrimRef> prims) noexcept;

/// One SAH sweep event. Sort order at equal positions is End < Planar <
/// Start, which makes the sweep counts exact at shared plane positions.
struct SahEvent {
  enum Type : std::uint8_t { kEnd = 0, kPlanar = 1, kStart = 2 };

  float position = 0.0f;
  std::uint32_t prim = 0;  ///< index into the node's PrimRef array
  Type type = kStart;

  friend bool operator<(const SahEvent& a, const SahEvent& b) noexcept {
    if (a.position != b.position) return a.position < b.position;
    return a.type < b.type;
  }
};

/// Fills `events` (cleared first) with the events of `prims` along `axis`.
void make_events(std::span<const PrimRef> prims, Axis axis,
                 std::vector<SahEvent>& events);

/// Sweeps sorted `events` and returns the best plane on this axis (merged into
/// `best` only if cheaper). `nb` is the node's primitive count.
void sweep_axis(const SahParams& sah, const AABB& node_bounds, Axis axis,
                std::span<const SahEvent> events, std::size_t nb,
                SplitCandidate& best);

/// Full sequential plane search: all three axes, O(n log n) per node
/// (re-sorts events; the recursion over it is O(n log^2 n) total).
SplitCandidate find_best_split_sweep(const SahParams& sah,
                                     const AABB& node_bounds,
                                     std::span<const PrimRef> prims);

/// Which side of a chosen plane a primitive belongs to.
enum class Side : std::uint8_t { kLeft, kRight, kBoth };

Side classify(const PrimRef& prim, const SplitCandidate& split) noexcept;

/// Splits `prims` into child lists. With `clip_straddlers` (the default,
/// "perfect splits"), straddling primitives are re-clipped against the child
/// boxes and clips that come up empty are dropped; without it their bounds
/// are merely intersected with the child box (cheaper, looser).
void partition_prims(std::span<const PrimRef> prims,
                     std::span<const Triangle> tris,
                     const SplitCandidate& split, const AABB& left_box,
                     const AABB& right_box, std::vector<PrimRef>& left,
                     std::vector<PrimRef>& right, bool clip_straddlers = true);

/// Pointer-based node produced by recursive builders, flattened at the end.
struct BuildNode {
  bool leaf = true;
  Axis axis = Axis::X;
  float split = 0.0f;
  std::unique_ptr<BuildNode> left;
  std::unique_ptr<BuildNode> right;
  std::vector<std::uint32_t> prims;  ///< triangle ids (leaves only)

  static std::unique_ptr<BuildNode> make_leaf(std::span<const PrimRef> refs);
};

struct FlatTree {
  std::vector<KdNode> nodes;
  std::vector<std::uint32_t> prim_indices;
  std::uint32_t root = 0;
};

/// DFS pre-order flattening of a pointer tree.
FlatTree flatten(const BuildNode& root);

}  // namespace kdtune
