#include "kdtree/sah.hpp"

#include <algorithm>
#include <cmath>

#include "kdtree/tree.hpp"

namespace kdtune {

int BuildConfig::resolved_max_depth(std::size_t prim_count) const noexcept {
  // Whatever the source (manual override or the automatic bound), the result
  // is clamped to the traversal stack capacity: a deeper tree would overflow
  // the fixed near/far stack, which silently drops far children (lost hits).
  if (max_depth > 0) {
    return std::min(max_depth, traversal_detail::kMaxStackDepth);
  }
  if (prim_count < 2) return 1;
  // Standard kd-tree depth bound (PBRT / Wald): 8 + 1.3 * log2(n).
  const int automatic = static_cast<int>(
      8.0 + 1.3 * std::log2(static_cast<double>(prim_count)) + 0.5);
  return std::min(automatic, traversal_detail::kMaxStackDepth);
}

SplitCandidate evaluate_plane(const SahParams& p, const AABB& node_bounds,
                              Axis axis, float position, std::size_t nl,
                              std::size_t np, std::size_t nr,
                              std::size_t nb) noexcept {
  SplitCandidate out;
  // Planes flush with the node boundary that put everything on one side are
  // useless (they create an empty child identical to the parent).
  const float lo = node_bounds.lo[axis];
  const float hi = node_bounds.hi[axis];
  if (position <= lo || position >= hi) return out;

  const auto [lbox, rbox] = node_bounds.split(axis, position);
  const double area_b = node_bounds.surface_area();
  const double area_l = lbox.surface_area();
  const double area_r = rbox.surface_area();

  double cost_planar_left =
      split_cost(p, area_l, area_r, area_b, nl + np, nr, nb);
  double cost_planar_right =
      split_cost(p, area_l, area_r, area_b, nl, nr + np, nb);
  if (p.empty_bonus > 0.0) {
    // Reward planes that cut away empty space (Wald & Havran SS4.4).
    const double bonus = 1.0 - p.empty_bonus;
    if (nl + np == 0 || nr == 0) cost_planar_left *= bonus;
    if (nl == 0 || nr + np == 0) cost_planar_right *= bonus;
  }

  out.axis = axis;
  out.position = position;
  if (cost_planar_left <= cost_planar_right) {
    out.cost = cost_planar_left;
    out.planar_left = true;
    out.nl = nl + np;
    out.nr = nr;
  } else {
    out.cost = cost_planar_right;
    out.planar_left = false;
    out.nl = nl;
    out.nr = nr + np;
  }
  return out;
}

}  // namespace kdtune
