// In-place parallel builder (paper §IV-C): breadth-first construction, one
// whole tree level at a time, primitives tracked by node membership. The two
// parallel prefix-style phases (per-node maximum-SAH selection, per-triangle
// assignment to children) live in bfs_builder.cpp and are shared with the
// lazy builder.

#include "kdtree/bfs_builder.hpp"

namespace kdtune {

namespace {

class InPlaceBuilder final : public Builder {
 public:
  std::string_view name() const noexcept override { return "in-place"; }

  std::unique_ptr<KdTreeBase> build(std::span<const Triangle> tris,
                                    const BuildConfig& config,
                                    ThreadPool& pool) const override {
    BfsResult r = bfs_build(tris, config, pool, /*defer_below=*/0);
    return std::make_unique<KdTree>(
        std::vector<Triangle>(tris.begin(), tris.end()),
        std::move(r.tree.nodes), std::move(r.tree.prim_indices), r.tree.root,
        r.bounds);
  }
};

}  // namespace

std::unique_ptr<Builder> make_inplace_builder();

std::unique_ptr<Builder> make_inplace_builder() {
  return std::make_unique<InPlaceBuilder>();
}

}  // namespace kdtune
