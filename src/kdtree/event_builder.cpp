// O(n log n) SAH build (Wald & Havran 2006, "On building fast kd-trees for
// ray tracing, and on doing that in O(N log N)"): events are generated and
// sorted exactly once at the root; every recursion step reuses the sort by
// *splicing* the per-axis event lists — stable-filtering events whose
// primitive went entirely left or right, and merging in freshly generated
// (small) event lists for straddling primitives re-clipped to the child
// boxes. The paper's node-level algorithm is the parallel form of this
// builder; here it serves as the sequential reference whose asymptotics the
// ablation benchmarks measure against the O(n log^2 n) re-sorting sweep.

#include <algorithm>
#include <array>

#include "kdtree/build_common.hpp"
#include "kdtree/builder.hpp"
#include "kdtree/recursive_builder.hpp"

namespace kdtune {

namespace {

using EventLists = std::array<std::vector<SahEvent>, 3>;

enum class PrimSide : std::uint8_t { kBoth = 0, kLeft = 1, kRight = 2 };

/// Number of distinct primitives in a per-axis event list: every primitive
/// contributes exactly one Start or one Planar event per axis.
std::size_t count_prims(const std::vector<SahEvent>& axis_events) noexcept {
  std::size_t n = 0;
  for (const SahEvent& e : axis_events) {
    n += e.type != SahEvent::kEnd;
  }
  return n;
}

class EventBuildContext {
 public:
  EventBuildContext(std::span<const Triangle> tris, const SahParams& sah,
                    int max_depth)
      : tris_(tris), sah_(sah), max_depth_(max_depth),
        side_(tris.size(), PrimSide::kBoth) {}

  std::unique_ptr<BuildNode> build(EventLists events, std::size_t nb,
                                   const AABB& box, int depth) {
    if (nb <= 1 || depth >= max_depth_) return make_leaf(events[0]);

    SplitCandidate best;
    for (int a = 0; a < 3; ++a) {
      const Axis axis = static_cast<Axis>(a);
      if (box.lo[axis] >= box.hi[axis]) continue;
      sweep_axis(sah_, box, axis, events[a], nb, best);
    }
    if (should_terminate(sah_, nb, best)) return make_leaf(events[0]);

    const auto [lbox, rbox] = box.split(best.axis, best.position);

    // Classification (W&H §4.3): walk the chosen axis' events once, marking
    // each primitive Left, Right, or Both.
    classify_prims(events[axis_index(best.axis)], best);

    // Splice all three axis lists into child lists.
    EventLists left_events, right_events;
    for (int a = 0; a < 3; ++a) {
      splice_axis(static_cast<Axis>(a), events[a], lbox, rbox, left_events[a],
                  right_events[a]);
      events[a].clear();
      events[a].shrink_to_fit();
    }
    reset_sides(left_events[0]);
    reset_sides(right_events[0]);

    const std::size_t nl = count_prims(left_events[0]);
    const std::size_t nr = count_prims(right_events[0]);

    auto node = std::make_unique<BuildNode>();
    node->leaf = false;
    node->axis = best.axis;
    node->split = best.position;
    node->left = build(std::move(left_events), nl, lbox, depth + 1);
    node->right = build(std::move(right_events), nr, rbox, depth + 1);
    return node;
  }

 private:
  std::unique_ptr<BuildNode> make_leaf(const std::vector<SahEvent>& x_events) {
    auto node = std::make_unique<BuildNode>();
    node->leaf = true;
    for (const SahEvent& e : x_events) {
      if (e.type != SahEvent::kEnd) node->prims.push_back(e.prim);
    }
    std::sort(node->prims.begin(), node->prims.end());
    node->prims.erase(std::unique(node->prims.begin(), node->prims.end()),
                      node->prims.end());
    return node;
  }

  void classify_prims(const std::vector<SahEvent>& axis_events,
                      const SplitCandidate& split) {
    // Default is Both; events prove a primitive lies entirely on one side.
    for (const SahEvent& e : axis_events) side_[e.prim] = PrimSide::kBoth;
    for (const SahEvent& e : axis_events) {
      switch (e.type) {
        case SahEvent::kEnd:
          if (e.position <= split.position) side_[e.prim] = PrimSide::kLeft;
          break;
        case SahEvent::kStart:
          if (e.position >= split.position) side_[e.prim] = PrimSide::kRight;
          break;
        case SahEvent::kPlanar:
          if (e.position < split.position) {
            side_[e.prim] = PrimSide::kLeft;
          } else if (e.position > split.position) {
            side_[e.prim] = PrimSide::kRight;
          }
          // Exactly in the plane: stays kBoth so the splice emits it into
          // both children (see classify() in build_common.cpp — one-sided
          // placement of in-plane primitives loses closest hits).
          break;
      }
    }
  }

  void splice_axis(Axis axis, const std::vector<SahEvent>& events,
                   const AABB& lbox, const AABB& rbox,
                   std::vector<SahEvent>& left, std::vector<SahEvent>& right) {
    left.clear();
    right.clear();
    // Stable filter preserves sortedness for one-sided primitives.
    std::vector<SahEvent> fresh_left, fresh_right;
    for (const SahEvent& e : events) {
      switch (side_[e.prim]) {
        case PrimSide::kLeft:
          left.push_back(e);
          break;
        case PrimSide::kRight:
          right.push_back(e);
          break;
        case PrimSide::kBoth:
          // Regenerated below (only once per primitive, at its non-End
          // event, so Start/End pairs are not emitted twice).
          if (e.type != SahEvent::kEnd) {
            emit_clipped(axis, e.prim, lbox, fresh_left);
            emit_clipped(axis, e.prim, rbox, fresh_right);
          }
          break;
      }
    }
    // The fresh lists are small (straddlers only): sort and merge.
    std::sort(fresh_left.begin(), fresh_left.end());
    std::sort(fresh_right.begin(), fresh_right.end());
    merge_into(left, fresh_left);
    merge_into(right, fresh_right);
  }

  void emit_clipped(Axis axis, std::uint32_t prim, const AABB& box,
                    std::vector<SahEvent>& out) {
    const AABB clipped = clipped_bounds(tris_[prim], box);
    if (clipped.empty()) return;  // grazing contact with the plane
    const float lo = clipped.lo[axis];
    const float hi = clipped.hi[axis];
    if (lo == hi) {
      out.push_back({lo, prim, SahEvent::kPlanar});
    } else {
      out.push_back({lo, prim, SahEvent::kStart});
      out.push_back({hi, prim, SahEvent::kEnd});
    }
  }

  static void merge_into(std::vector<SahEvent>& sorted,
                         const std::vector<SahEvent>& addition) {
    if (addition.empty()) return;
    std::vector<SahEvent> merged;
    merged.reserve(sorted.size() + addition.size());
    std::merge(sorted.begin(), sorted.end(), addition.begin(), addition.end(),
               std::back_inserter(merged));
    sorted = std::move(merged);
  }

  void reset_sides(const std::vector<SahEvent>& x_events) {
    for (const SahEvent& e : x_events) side_[e.prim] = PrimSide::kBoth;
  }

  std::span<const Triangle> tris_;
  SahParams sah_;
  int max_depth_;
  std::vector<PrimSide> side_;
};

class EventBuilder final : public Builder {
 public:
  std::string_view name() const noexcept override { return "event"; }

  std::unique_ptr<KdTreeBase> build(std::span<const Triangle> tris,
                                    const BuildConfig& config,
                                    ThreadPool&) const override {
    std::vector<PrimRef> refs = make_prim_refs(tris);
    const AABB bounds = bounds_of_refs(refs);

    std::unique_ptr<BuildNode> root;
    if (refs.empty()) {
      root = BuildNode::make_leaf({});
    } else {
      // Root events index primitives by *triangle id* (the event builder
      // tracks sides globally), unlike the sweep path's node-local refs.
      EventLists events;
      for (int a = 0; a < 3; ++a) {
        const Axis axis = static_cast<Axis>(a);
        auto& list = events[a];
        list.reserve(refs.size() * 2);
        for (const PrimRef& r : refs) {
          const float lo = r.bounds.lo[axis];
          const float hi = r.bounds.hi[axis];
          if (lo == hi) {
            list.push_back({lo, r.tri, SahEvent::kPlanar});
          } else {
            list.push_back({lo, r.tri, SahEvent::kStart});
            list.push_back({hi, r.tri, SahEvent::kEnd});
          }
        }
        std::sort(list.begin(), list.end());
      }

      EventBuildContext ctx(tris, SahParams::from_config(config),
                            config.resolved_max_depth(refs.size()));
      root = ctx.build(std::move(events), refs.size(), bounds, 0);
    }

    FlatTree flat = flatten(*root);
    return std::make_unique<KdTree>(
        std::vector<Triangle>(tris.begin(), tris.end()), std::move(flat.nodes),
        std::move(flat.prim_indices), flat.root, bounds);
  }
};

}  // namespace

std::unique_ptr<Builder> make_event_builder() {
  return std::make_unique<EventBuilder>();
}

}  // namespace kdtune
