#pragma once

// The Surface Area Heuristic cost model (paper §III-B, equations 1 and 2).
//
//   SAH(h, b) = CT + p(l,b)*Nl*CI + p(r,b)*Nr*CI + (Nl + Nr - Nb)*CB
//
// where p(sub, b) = A(sub)/A(b) is the geometric hit probability and the
// (Nl+Nr-Nb) term charges CB for every primitive duplicated across the plane.
// Subdivision stops when no plane beats the leaf cost Nb*CI (equation 2).

#include <cstddef>
#include <limits>

#include "geom/aabb.hpp"
#include "kdtree/build_config.hpp"

namespace kdtune {

/// SAH cost coefficients for one build. Kept as doubles: the sweep compares
/// tens of thousands of nearly-equal costs per node and float rounding changes
/// chosen planes between builders.
struct SahParams {
  double ct = BuildConfig::kCt;
  double ci = 17.0;
  double cb = 10.0;
  /// Wald & Havran's empty-space bonus: planes cutting off an empty child get
  /// their cost scaled by (1 - empty_bonus). 0 = plain equation 1.
  double empty_bonus = 0.0;

  static SahParams from_config(const BuildConfig& c) noexcept {
    return {BuildConfig::kCt, static_cast<double>(c.ci),
            static_cast<double>(c.cb), c.empty_bonus};
  }
};

/// Cost of making `n` primitives a leaf (the right side of equation 2).
inline double leaf_cost(const SahParams& p, std::size_t n) noexcept {
  return p.ci * static_cast<double>(n);
}

/// Equation 1 for a concrete plane: `nl`/`nr` are the primitive counts of the
/// two children (straddlers counted in both), `nb` the parent's count,
/// `area_l`/`area_r`/`area_b` the respective surface areas. Returns +inf for
/// a degenerate parent (zero area), which can only happen with planar nodes.
inline double split_cost(const SahParams& p, double area_l, double area_r,
                         double area_b, std::size_t nl, std::size_t nr,
                         std::size_t nb) noexcept {
  if (area_b <= 0.0) return std::numeric_limits<double>::infinity();
  const double pl = area_l / area_b;
  const double pr = area_r / area_b;
  const double duplicated =
      static_cast<double>(nl) + static_cast<double>(nr) - static_cast<double>(nb);
  return p.ct + pl * static_cast<double>(nl) * p.ci +
         pr * static_cast<double>(nr) * p.ci + duplicated * p.cb;
}

/// A candidate split plane with its cost and the side planar primitives were
/// counted on. planar_left is a cost-model accounting choice only: the actual
/// partition duplicates in-plane primitives into both children, because
/// one-sided placement loses closest hits whose computed t rounds across the
/// computed t_split (see classify() in build_common.cpp).
struct SplitCandidate {
  double cost = std::numeric_limits<double>::infinity();
  Axis axis = Axis::X;
  float position = 0.0f;
  bool planar_left = false;  ///< side planar prims were *counted* on (SAH)
  std::size_t nl = 0;        ///< resulting left count (incl. planars if left)
  std::size_t nr = 0;        ///< resulting right count

  bool valid() const noexcept {
    return cost < std::numeric_limits<double>::infinity();
  }
};

/// Equation 2: should `node` become a leaf given the best plane found?
inline bool should_terminate(const SahParams& p, std::size_t nb,
                             const SplitCandidate& best) noexcept {
  return !best.valid() || leaf_cost(p, nb) <= best.cost;
}

/// Evaluates one plane (both planar-side choices) and returns the better
/// candidate. `np` is the number of primitives lying exactly in the plane.
SplitCandidate evaluate_plane(const SahParams& p, const AABB& node_bounds,
                              Axis axis, float position, std::size_t nl,
                              std::size_t np, std::size_t nr,
                              std::size_t nb) noexcept;

}  // namespace kdtune
