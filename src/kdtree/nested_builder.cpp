// Nested parallel builder (paper §IV-B, after Choi et al. 2010): node-level
// subtree tasks exactly as in §IV-A, *plus* parallel processing of the
// primitives inside individual nodes. Per node and axis the primitive/event
// list is split into chunks distributed across threads and processed as a
// sequence of parallel prefix operations:
//
//   1. event generation            - parallel for over primitives
//   2. event sorting               - parallel merge sort
//   3. sweep counts (nl/np/nr)     - three chunked exclusive prefix sums
//   4. plane selection             - parallel argmin reduction
//   5. classification + partition  - parallel for + prefix-sum compaction
//
// Step 3's across-chunk combination is inherently serialized (the paper notes
// the prefix interactions are in fact serialized); everything else scales.

#include <atomic>
#include <cstring>

#include "kdtree/recursive_builder.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/parallel_reduce.hpp"
#include "parallel/parallel_scan.hpp"
#include "parallel/parallel_sort.hpp"

namespace kdtune {

namespace {

class NestedSplitStrategy final : public SplitStrategy {
 public:
  /// `threshold`: below this primitive count intra-node parallelism costs
  /// more than it buys and the node falls back to the sequential sweep.
  explicit NestedSplitStrategy(std::size_t threshold) : threshold_(threshold) {}

  SplitCandidate find_best_split(const SahParams& sah, const AABB& node_bounds,
                                 std::span<const PrimRef> prims,
                                 ThreadPool& pool) const override {
    if (prims.size() < threshold_ || pool.worker_count() == 0) {
      return find_best_split_sweep(sah, node_bounds, prims);
    }

    SplitCandidate best;
    std::vector<SahEvent> events;
    std::vector<std::uint32_t> is_start, is_end, is_planar;
    std::vector<std::uint32_t> pre_start, pre_end, pre_planar;

    for (int a = 0; a < 3; ++a) {
      const Axis axis = static_cast<Axis>(a);
      if (node_bounds.lo[axis] >= node_bounds.hi[axis]) continue;

      // (1) Parallel event generation. Each primitive emits a fixed-size
      // record (two slots; planar prims leave the second slot as a
      // sentinel), so slots are computed without synchronization and
      // sentinels are compacted afterwards.
      {
        TraceSpan span("nested.events", "build");
        events.assign(prims.size() * 2,
                      SahEvent{0.0f, 0xFFFFFFFFu, SahEvent::kStart});
        parallel_for(pool, 0, prims.size(), 1024, [&](std::size_t i) {
          const float lo = prims[i].bounds.lo[axis];
          const float hi = prims[i].bounds.hi[axis];
          const auto prim = static_cast<std::uint32_t>(i);
          if (lo == hi) {
            events[2 * i] = {lo, prim, SahEvent::kPlanar};
          } else {
            events[2 * i] = {lo, prim, SahEvent::kStart};
            events[2 * i + 1] = {hi, prim, SahEvent::kEnd};
          }
        });
        std::erase_if(events,
                      [](const SahEvent& e) { return e.prim == 0xFFFFFFFFu; });
      }

      // (2) Parallel sort.
      {
        TraceSpan span("nested.sort", "build");
        parallel_sort(pool, std::span<SahEvent>(events));
      }

      const std::size_t n = events.size();

      // (3) Chunked prefix sums of the per-type indicators give, for every
      // event index i, the number of starts/ends/planars strictly before i.
      {
        TraceSpan span("nested.scan", "build");
        is_start.resize(n);
        is_end.resize(n);
        is_planar.resize(n);
        parallel_for(pool, 0, n, 4096, [&](std::size_t i) {
          is_start[i] = events[i].type == SahEvent::kStart;
          is_end[i] = events[i].type == SahEvent::kEnd;
          is_planar[i] = events[i].type == SahEvent::kPlanar;
        });
        pre_start.resize(n);
        pre_end.resize(n);
        pre_planar.resize(n);
        parallel_exclusive_scan<std::uint32_t>(pool, is_start, pre_start);
        parallel_exclusive_scan<std::uint32_t>(pool, is_end, pre_end);
        parallel_exclusive_scan<std::uint32_t>(pool, is_planar, pre_planar);
      }

      const std::size_t nb = prims.size();

      // (4) Parallel argmin over candidate planes. A candidate is the first
      // event of each position group; the group's end/planar counts are
      // gathered by a short forward scan (groups are contiguous and sorted
      // End < Planar < Start, and the scan may safely cross chunk borders —
      // it only reads).
      TraceSpan select_span("nested.select", "build");
      const SplitCandidate axis_best = parallel_reduce<SplitCandidate>(
          pool, 0, n, 4096, SplitCandidate{},
          [&](std::size_t b, std::size_t e) {
            SplitCandidate local;
            for (std::size_t i = b; i < e; ++i) {
              if (i > 0 && events[i - 1].position == events[i].position) {
                continue;  // not a group head
              }
              const float pos = events[i].position;
              std::size_t ends_at = 0, planars_at = 0;
              std::size_t j = i;
              while (j < n && events[j].position == pos &&
                     events[j].type == SahEvent::kEnd) {
                ++ends_at;
                ++j;
              }
              while (j < n && events[j].position == pos &&
                     events[j].type == SahEvent::kPlanar) {
                ++planars_at;
                ++j;
              }
              const std::size_t nl = pre_start[i] + pre_planar[i];
              const std::size_t nr =
                  nb - (pre_end[i] + ends_at) - (pre_planar[i] + planars_at);
              const SplitCandidate cand = evaluate_plane(
                  sah, node_bounds, axis, pos, nl, planars_at, nr, nb);
              if (cand.cost < local.cost) local = cand;
            }
            return local;
          },
          [](const SplitCandidate& x, const SplitCandidate& y) {
            return y.cost < x.cost ? y : x;
          });

      if (axis_best.cost < best.cost) best = axis_best;
    }
    return best;
  }

  void partition(std::span<const PrimRef> prims, std::span<const Triangle> tris,
                 const SplitCandidate& split, const AABB& left_box,
                 const AABB& right_box, std::vector<PrimRef>& left,
                 std::vector<PrimRef>& right, bool clip_straddlers,
                 ThreadPool& pool) const override {
    if (prims.size() < threshold_ || pool.worker_count() == 0) {
      partition_prims(prims, tris, split, left_box, right_box, left, right,
                      clip_straddlers);
      return;
    }

    const std::size_t n = prims.size();
    // (5a) Parallel classification into per-primitive child indicators.
    std::vector<std::uint32_t> go_left(n), go_right(n);
    {
      TraceSpan span("nested.classify", "build");
      parallel_for(pool, 0, n, 2048, [&](std::size_t i) {
        const Side side = classify(prims[i], split);
        go_left[i] = side != Side::kRight;
        go_right[i] = side != Side::kLeft;
      });
    }

    // (5b) Prefix sums turn the indicators into stable output slots.
    std::vector<std::uint32_t> off_left(n), off_right(n);
    std::uint32_t total_left = 0, total_right = 0;
    {
      TraceSpan span("nested.offsets", "build");
      total_left =
          parallel_exclusive_scan_total<std::uint32_t>(pool, go_left, off_left);
      total_right = parallel_exclusive_scan_total<std::uint32_t>(pool, go_right,
                                                                 off_right);
    }

    left.assign(total_left, PrimRef{});
    right.assign(total_right, PrimRef{});

    // (5c) Parallel scatter. Straddlers are re-clipped against the child
    // boxes (perfect splits); a clip that comes up empty leaves a sentinel
    // dropped in the sequential compaction below (rare: grazing contact).
    constexpr std::uint32_t kDrop = 0xFFFFFFFFu;
    TraceSpan scatter_span("nested.scatter", "build");
    parallel_for(pool, 0, n, 2048, [&](std::size_t i) {
      const Side side = classify(prims[i], split);
      if (side == Side::kBoth) {
        const AABB lb = clip_straddlers
                            ? clipped_bounds(tris[prims[i].tri], left_box)
                            : AABB::intersect(prims[i].bounds, left_box);
        left[off_left[i]] =
            lb.empty() ? PrimRef{kDrop, {}} : PrimRef{prims[i].tri, lb};
        const AABB rb = clip_straddlers
                            ? clipped_bounds(tris[prims[i].tri], right_box)
                            : AABB::intersect(prims[i].bounds, right_box);
        right[off_right[i]] =
            rb.empty() ? PrimRef{kDrop, {}} : PrimRef{prims[i].tri, rb};
      } else if (side == Side::kLeft) {
        left[off_left[i]] = prims[i];
      } else {
        right[off_right[i]] = prims[i];
      }
    });

    std::erase_if(left, [](const PrimRef& p) { return p.tri == kDrop; });
    std::erase_if(right, [](const PrimRef& p) { return p.tri == kDrop; });
  }

 private:
  std::size_t threshold_;
};

class NestedBuilder final : public Builder {
 public:
  std::string_view name() const noexcept override { return "nested"; }

  std::unique_ptr<KdTreeBase> build(std::span<const Triangle> tris,
                                    const BuildConfig& config,
                                    ThreadPool& pool) const override {
    const NestedSplitStrategy strategy(config.nested_threshold);
    const int depth = task_depth_for(config.s, pool.concurrency());
    return recursive_build_tree(tris, config, pool, depth, strategy);
  }
};

}  // namespace

std::unique_ptr<Builder> make_nested_builder();

std::unique_ptr<Builder> make_nested_builder() {
  return std::make_unique<NestedBuilder>();
}

}  // namespace kdtune
