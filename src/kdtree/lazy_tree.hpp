#pragma once

// Lazily expanded kd-tree (paper §IV-D). The in-place BFS phase builds the
// tree down to nodes of fewer than R primitives and leaves them *deferred*;
// a deferred node is fully expanded the first time a ray reaches it during
// traversal. Expansion runs under a single critical section (matching the
// paper's OpenMP critical) and publishes new subtrees with release/acquire
// ordering, so concurrent rays on other threads are safe and lock-free on the
// already-expanded parts of the tree.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "kdtree/bfs_builder.hpp"
#include "kdtree/build_config.hpp"
#include "kdtree/nodes.hpp"
#include "kdtree/tree.hpp"
#include "parallel/stable_pool.hpp"

namespace kdtune {

class LazyKdTree final : public KdTreeBase {
 public:
  /// Node with atomically readable flags (the publication point for lazily
  /// created subtrees).
  struct LazyNode {
    float split = 0.0f;
    std::atomic<std::uint32_t> flags{KdNode::kLeaf};
    std::uint32_t a = 0;
    std::uint32_t b = 0;

    LazyNode() = default;
    LazyNode(const LazyNode&) = delete;
    LazyNode& operator=(const LazyNode&) = delete;
  };

  /// Takes the BFS phase's flat output. `deferred_bounds` maps deferred node
  /// indices to their boxes and depths (needed to build their subtrees later
  /// within the traversal-stack depth budget).
  LazyKdTree(std::vector<Triangle> triangles, std::vector<KdNode> nodes,
             std::vector<std::uint32_t> prim_indices, std::uint32_t root,
             AABB bounds,
             std::unordered_map<std::uint32_t, DeferredInfo> deferred_bounds,
             BuildConfig config);

  Hit closest_hit(const Ray& ray) const override;
  bool any_hit(const Ray& ray) const override;
  /// Range/nearest queries expand the deferred subtrees they reach, exactly
  /// like rays do.
  void query_range(const AABB& box,
                   std::vector<std::uint32_t>& out) const override;
  NearestResult nearest(const Vec3& point) const override;
  const AABB& bounds() const noexcept override { return bounds_; }
  std::span<const Triangle> triangles() const noexcept override {
    return triangles_;
  }
  TreeStats stats() const override;

  /// Number of deferred nodes expanded so far (the benchmarks report this:
  /// on heavily occluded scenes most subtrees are never expanded).
  std::size_t expansions() const noexcept {
    return expansions_.load(std::memory_order_relaxed);
  }

  /// Number of far-child pushes dropped because the traversal stack was
  /// saturated. The depth clamp makes this structurally impossible, so any
  /// non-zero value is a bug (debug builds assert instead of counting);
  /// exposed so release deployments can alarm rather than silently lose hits.
  std::size_t stack_overflows() const noexcept {
    return stack_overflows_.load(std::memory_order_relaxed);
  }

  std::size_t deferred_remaining() const;

  /// Expands every remaining deferred node (tests use this to compare the
  /// fully expanded lazy tree against an eager build).
  void expand_all() const;

 private:
  struct Snapshot {
    float split;
    std::uint32_t flags;
    std::uint32_t a;
    std::uint32_t b;
  };

  /// Loads a node, expanding it first if deferred.
  Snapshot resolve(std::uint32_t index) const;
  void expand(std::uint32_t index) const;

  void do_nearest_k(const Vec3& point, std::size_t k,
                    std::vector<NearestResult>& out,
                    float max_distance) const override;
  void nearest_core(const Vec3& point, KnnCollector& collector) const;

  template <typename LeafFn>
  void traverse(const Ray& ray, LeafFn&& leaf_fn) const;

  std::vector<Triangle> triangles_;
  AABB bounds_;
  std::uint32_t root_;
  BuildConfig config_;

  // Mutable: queries are const but expansion appends state. All mutation is
  // guarded by expand_mutex_; publication is via LazyNode::flags.
  mutable StablePool<LazyNode> nodes_;
  mutable StablePool<std::uint32_t> prims_;
  mutable std::unordered_map<std::uint32_t, DeferredInfo> deferred_bounds_;
  mutable std::mutex expand_mutex_;  ///< the paper's "OpenMP critical"
  mutable std::atomic<std::size_t> expansions_{0};
  mutable std::atomic<std::size_t> stack_overflows_{0};
};

}  // namespace kdtune
