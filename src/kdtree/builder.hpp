#pragma once

// Builder interface and registry. The paper evaluates four parallel builders
// (node-level, nested, in-place, lazy); the library adds a fifth tuner
// candidate (the left-balanced massively-parallel builder) and three
// sequential reference builders (median split, SAH sweep, O(n log n) event
// build) used as baselines and as the lazy tree's expansion engine.

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "geom/triangle.hpp"
#include "kdtree/build_config.hpp"
#include "kdtree/tree.hpp"
#include "parallel/thread_pool.hpp"

namespace kdtune {

class Builder {
 public:
  virtual ~Builder() = default;

  virtual std::string_view name() const noexcept = 0;

  /// True if the builder uses the lazy parameter R (Table Ib vs Ia).
  virtual bool uses_lazy_resolution() const noexcept { return false; }

  /// Builds a tree over a copy of `tris`. Thread-safe: one builder instance
  /// may run concurrent builds.
  virtual std::unique_ptr<KdTreeBase> build(std::span<const Triangle> tris,
                                            const BuildConfig& config,
                                            ThreadPool& pool) const = 0;
};

/// The paper's four algorithm ids, in its order, plus the left-balanced
/// massively-parallel builder (Wald) the tuner arbitrates against them.
enum class Algorithm { kNodeLevel, kNested, kInPlace, kLazy, kBalanced };

std::string_view to_string(Algorithm a) noexcept;
Algorithm algorithm_from_string(std::string_view name);
std::vector<Algorithm> all_algorithms();

/// Factory for the tuner-selectable algorithms.
std::unique_ptr<Builder> make_builder(Algorithm a);

/// Factories for the sequential reference builders.
std::unique_ptr<Builder> make_median_builder();
std::unique_ptr<Builder> make_sweep_builder();
std::unique_ptr<Builder> make_event_builder();

}  // namespace kdtune
