// Left-balanced massively-parallel builder (Wald, "GPU-Friendly, Parallel,
// and (Almost-)In-Place Construction of Left-Balanced k-d Trees"). No SAH
// sweep and no per-node allocation: the whole tree is produced one level at a
// time by median-quantile partitioning of a flat id array, with every
// per-primitive phase running as parallel passes over fixed-size blocks.
//
// Wald's trees split *points* and are left-balanced by construction; serving
// triangles through the shared KdNode traversal additionally requires that a
// primitive overlapping both halves of a split plane appears on both sides,
// so the partition duplicates straddlers — and clips the duplicate's AABB to
// the child domain on the split axis so a large primitive is only carried
// into cells its (recursively clipped) bounds actually touch. This is the
// adapter that keeps all six query families bit-exact against the
// brute-force oracles while preserving the build style's raw throughput. The
// result is an eager `KdTree` in BFS order — children of level L are
// contiguous in level L+1 — which collapses into the compact/wide serving
// layouts like any other eager build.
//
// Determinism: the split plane comes from a *strided* centroid sample
// (stride fixed by node size, never by thread count), side classification is
// pure per-primitive math, and the scatter preserves parent order via
// per-block prefix sums — so the tree is bit-identical across thread counts.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "kdtree/builder.hpp"
#include "parallel/parallel_for.hpp"

namespace kdtune {

namespace {

// Per-primitive side bits for one level's classification pass.
constexpr std::uint8_t kLeft = 1;
constexpr std::uint8_t kRight = 2;

// Block granularity of the per-level passes. Every block is an independent
// unit of work in both the counting and the scatter phase.
constexpr std::size_t kBlock = 4096;

// Upper bound on the strided centroid sample used for the split search.
// Keeps the per-node sequential cost O(1) no matter how many primitives a
// node holds.
constexpr std::size_t kMaxSample = 256;

constexpr std::uint32_t kLeafSize = 8;

// Levels carrying fewer primitive references than this run their phases
// inline: a tree level is four pool dispatches, which dominates the actual
// work on small scenes (and on the small deep levels of any scene).
constexpr std::size_t kSerialCutoff = 16384;

// One node alive at the current BFS level.
struct Task {
  std::uint32_t node = 0;   // index into the output node array
  std::size_t begin = 0;    // id range in the level's id array
  std::size_t end = 0;
  AABB box;                 // split-derived domain box
  // Split decision (phase A), then child placement (sequential step).
  bool split = false;
  Axis axis = Axis::X;
  float pos = 0.0f;
  std::size_t nl = 0, nr = 0;       // child sizes after counting
  std::size_t loff = 0, roff = 0;   // child offsets in the next id array
  std::size_t leaf_off = 0;         // offset in prim_indices when a leaf
};

// One fixed-size chunk of a task's id range; the unit of parallelism.
struct Block {
  std::uint32_t task = 0;
  std::size_t begin = 0, end = 0;
  std::size_t nl = 0, nr = 0;       // per-block side counts (phase A)
  std::size_t loff = 0, roff = 0;   // per-block scatter offsets (phase B)
};

class BalancedBuilder final : public Builder {
 public:
  std::string_view name() const noexcept override { return "balanced"; }

  std::unique_ptr<KdTreeBase> build(std::span<const Triangle> tris,
                                    const BuildConfig& config,
                                    ThreadPool& pool) const override {
    // Level-wide primitive state: triangle id + AABB clipped to every split
    // plane on the path from the root. Ping-pong between levels.
    std::vector<std::uint32_t> cur, next;
    std::vector<AABB> curb, nextb;
    AABB bounds;
    cur.reserve(tris.size());
    curb.reserve(tris.size());
    for (std::size_t i = 0; i < tris.size(); ++i) {
      if (tris[i].degenerate()) continue;  // zero-area: matches the oracles
      cur.push_back(static_cast<std::uint32_t>(i));
      curb.push_back(tris[i].bounds());
      bounds.expand(curb.back());
    }

    std::vector<KdNode> nodes;
    std::vector<std::uint32_t> prim_indices;

    if (cur.empty()) {
      // Empty soup (or all-degenerate input): a single empty leaf, exactly
      // the PR 7 empty-tree shape every query guard already understands.
      nodes.push_back(KdNode::make_leaf(0, 0));
      return std::make_unique<KdTree>(
          std::vector<Triangle>(tris.begin(), tris.end()), std::move(nodes),
          std::move(prim_indices), 0, bounds);
    }

    const int max_depth = config.resolved_max_depth(cur.size());
    std::vector<std::uint8_t> sides(cur.size());

    nodes.push_back(KdNode{});  // root placeholder
    std::vector<Task> tasks{Task{0, 0, cur.size(), bounds}};
    std::vector<Task> next_tasks;
    std::vector<Block> blocks;

    for (int depth = 0; !tasks.empty(); ++depth) {
      const bool serial = cur.size() < kSerialCutoff;
      const auto pfor = [&](std::size_t n, auto&& body) {
        if (serial) {
          for (std::size_t i = 0; i < n; ++i) body(i);
        } else {
          parallel_for(pool, 0, n, 1, body);
        }
      };

      // --- Phase A0: per-node split decision (parallel across nodes).
      pfor(tasks.size(), [&](std::size_t ti) {
        decide_split(tasks[ti], curb, depth, max_depth, config);
      });

      // Chop every splitting task into blocks.
      blocks.clear();
      for (std::size_t ti = 0; ti < tasks.size(); ++ti) {
        const Task& t = tasks[ti];
        if (!t.split) continue;
        for (std::size_t b = t.begin; b < t.end; b += kBlock) {
          blocks.push_back({static_cast<std::uint32_t>(ti), b,
                            std::min(t.end, b + kBlock)});
        }
      }

      // --- Phase A1: classify sides and count, one pass per block.
      pfor(blocks.size(), [&](std::size_t bi) {
        Block& blk = blocks[bi];
        const Task& t = tasks[blk.task];
        std::size_t nl = 0, nr = 0;
        for (std::size_t i = blk.begin; i < blk.end; ++i) {
          std::uint8_t s = 0;
          if (curb[i].lo[t.axis] < t.pos) s |= kLeft;
          if (curb[i].hi[t.axis] > t.pos) s |= kRight;
          if (s == 0) s = kLeft | kRight;  // planar on the split plane
          sides[i] = s;
          nl += (s & kLeft) ? 1 : 0;
          nr += (s & kRight) ? 1 : 0;
        }
        blk.nl = nl;
        blk.nr = nr;
      });

      // --- Sequential step: fold counts, demote no-progress splits to
      // leaves, lay out children (BFS: appended in task order) and prefix-sum
      // every offset — node, next-array and prim_indices placements.
      for (const Block& blk : blocks) {
        tasks[blk.task].nl += blk.nl;
        tasks[blk.task].nr += blk.nr;
      }
      std::size_t next_size = 0;
      std::size_t leaf_base = prim_indices.size();
      next_tasks.clear();
      for (Task& t : tasks) {
        const std::size_t count = t.end - t.begin;
        if (t.split &&
            (t.nl == 0 || t.nr == 0 || (t.nl == count && t.nr == count))) {
          // All primitives landed on one side, or every one of them straddles
          // the plane: recursing would loop on identical ranges (the
          // all-coincident degenerate case). Finalize as a leaf instead.
          t.split = false;
        }
        if (t.split) {
          const auto left = static_cast<std::uint32_t>(nodes.size());
          const auto right = left + 1;
          nodes[t.node] = KdNode::make_interior(t.axis, t.pos, left, right);
          nodes.emplace_back();
          nodes.emplace_back();
          t.loff = next_size;
          t.roff = next_size + t.nl;
          next_size += t.nl + t.nr;
          const auto [lbox, rbox] = t.box.split(t.axis, t.pos);
          next_tasks.push_back(Task{left, t.loff, t.roff, lbox});
          next_tasks.push_back(Task{right, t.roff, t.roff + t.nr, rbox});
        } else {
          t.leaf_off = leaf_base;
          nodes[t.node] = KdNode::make_leaf(
              static_cast<std::uint32_t>(leaf_base),
              static_cast<std::uint32_t>(count));
          leaf_base += count;
        }
      }
      // Per-block scatter offsets for split tasks, in parent order.
      for (Task& t : tasks) {
        if (t.split) {
          t.nl = t.loff;  // reuse as running write cursors for the blocks
          t.nr = t.roff;
        }
      }
      for (Block& blk : blocks) {
        Task& t = tasks[blk.task];
        if (!t.split) continue;
        blk.loff = t.nl;
        blk.roff = t.nr;
        t.nl += blk.nl;
        t.nr += blk.nr;
      }

      // --- Phase B: scatter. Split blocks write child ids into `next`,
      // clipping a duplicated straddler's AABB to the child domain on the
      // split axis; leaves (including demoted ones) copy ids out.
      next.resize(next_size);
      nextb.resize(next_size);
      pfor(blocks.size(), [&](std::size_t bi) {
        const Block& blk = blocks[bi];
        const Task& t = tasks[blk.task];
        if (!t.split) return;
        std::size_t l = blk.loff, r = blk.roff;
        for (std::size_t i = blk.begin; i < blk.end; ++i) {
          const std::uint8_t s = sides[i];
          if (s & kLeft) {
            next[l] = cur[i];
            nextb[l] = curb[i];
            if (s & kRight) nextb[l].hi[t.axis] = t.pos;
            ++l;
          }
          if (s & kRight) {
            next[r] = cur[i];
            nextb[r] = curb[i];
            if (s & kLeft) nextb[r].lo[t.axis] = t.pos;
            ++r;
          }
        }
      });
      prim_indices.resize(leaf_base);
      pfor(tasks.size(), [&](std::size_t ti) {
        const Task& t = tasks[ti];
        if (t.split) return;
        for (std::size_t i = t.begin; i < t.end; ++i) {
          prim_indices[t.leaf_off + (i - t.begin)] = cur[i];
        }
      });

      cur.swap(next);
      curb.swap(nextb);
      sides.resize(cur.size());
      tasks.swap(next_tasks);
    }

    return std::make_unique<KdTree>(
        std::vector<Triangle>(tris.begin(), tris.end()), std::move(nodes),
        std::move(prim_indices), 0, bounds);
  }

 private:
  static void decide_split(Task& t, const std::vector<AABB>& curb, int depth,
                           int max_depth, const BuildConfig& config) {
    const std::size_t count = t.end - t.begin;
    t.split = false;
    if (count <= kLeafSize || depth >= max_depth) return;

    // Candidate planes are centroid quantiles (median first) of a
    // deterministic strided sample, tried on every non-degenerate axis and
    // compared by a *sampled* SAH estimate — the full sweep and the binning
    // passes of the SAH builders are replaced by O(kMaxSample) work per
    // node. The estimate doubles as the termination rule: when no candidate
    // beats the leaf cost, splitting would only duplicate straddlers without
    // reducing query work, which is exactly the overlap-heavy case where
    // forced median recursion blows up the reference count.
    const std::size_t stride = std::max<std::size_t>(1, count / kMaxSample);
    float cen[kMaxSample], plo[kMaxSample], phi[kMaxSample];
    const Vec3 ext = t.box.extent();
    const double ci = static_cast<double>(config.ci);
    const double inv_area =
        1.0 / std::max(1e-30, 2.0 * (static_cast<double>(ext.x) * ext.y +
                                     static_cast<double>(ext.y) * ext.z +
                                     static_cast<double>(ext.z) * ext.x));
    double best_cost = ci * static_cast<double>(count);  // leaf cost
    static constexpr float kQuantiles[] = {0.5f, 0.3f, 0.7f, 0.2f, 0.8f};
    static constexpr float kMedianOnly[] = {0.5f};
    // Small nodes vastly outnumber large ones, so the candidate search is
    // tiered: tiny nodes try one plane (the centroid median of the longest
    // axis), mid-size nodes the full quantile set on the longest axis, and
    // only nodes above the sample cap pay for the three-axis search. This
    // keeps the aggregate decision cost a small fraction of the partition
    // passes without flattening deep-tree quality.
    const bool tiny = count <= 32;
    const bool mid = count <= kMaxSample;
    const std::span<const float> quantiles =
        tiny ? std::span<const float>(kMedianOnly)
             : std::span<const float>(kQuantiles);
    const int first_ax = mid ? static_cast<int>(t.box.longest_axis()) : 0;
    const int last_ax = mid ? first_ax : 2;
    for (int ax = first_ax; ax <= last_ax; ++ax) {
      const auto axis = static_cast<Axis>(ax);
      const float blo = t.box.lo[axis];
      const float bhi = t.box.hi[axis];
      if (!(blo < bhi)) continue;  // flat domain (all-coincident input)
      // Half-area of a child box = cross + spread * child extent on `axis`,
      // where cross/spread come from the two other axes.
      const double e1 = ext[(ax + 1) % 3];
      const double e2 = ext[(ax + 2) % 3];
      const double cross = e1 * e2;
      const double spread = e1 + e2;
      std::size_t m = 0;
      for (std::size_t i = t.begin; i < t.end && m < kMaxSample; i += stride) {
        plo[m] = curb[i].lo[axis];
        phi[m] = curb[i].hi[axis];
        cen[m] = 0.5f * (plo[m] + phi[m]);
        ++m;
      }
      if (tiny) {
        std::nth_element(cen, cen + static_cast<std::size_t>(0.5f * (m - 1)),
                         cen + m);
      } else {
        std::sort(cen, cen + m);
      }
      const double scale = static_cast<double>(count) / static_cast<double>(m);
      float prev = blo;  // skip duplicate candidate positions
      for (float q : quantiles) {
        const float pos = cen[static_cast<std::size_t>(q * (m - 1))];
        if (!(pos > blo && pos < bhi) || pos == prev) continue;
        prev = pos;
        std::size_t nl = 0, nr = 0;
        for (std::size_t i = 0; i < m; ++i) {
          nl += (plo[i] < pos) ? 1 : 0;
          nr += (phi[i] > pos) ? 1 : 0;
        }
        if (nl == 0 || nr == 0) continue;
        const double al = 2.0 * (cross + spread * (pos - blo));
        const double ar = 2.0 * (cross + spread * (bhi - pos));
        const double cost =
            BuildConfig::kCt +
            ci * scale * inv_area *
                (al * static_cast<double>(nl) + ar * static_cast<double>(nr));
        if (cost < best_cost) {
          best_cost = cost;
          t.split = true;
          t.axis = axis;
          t.pos = pos;
        }
      }
    }
    t.nl = t.nr = 0;
  }
};

}  // namespace

std::unique_ptr<Builder> make_balanced_builder();

std::unique_ptr<Builder> make_balanced_builder() {
  return std::make_unique<BalancedBuilder>();
}

}  // namespace kdtune
