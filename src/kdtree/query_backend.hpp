#pragma once

// The serving-layout axis of the tuning space: which query backend answers
// ray queries for a scene. Header-only (no kdtree-library types) so the
// tuning and obs layers can name backends without linking traversal code.
//
// The enumerator values are the tunable parameter's integer grid — the tuner
// registers `query_backend` as a linear parameter over [0, kQueryBackendCount)
// and the serving layers map the chosen value back through from_int().

#include <cstdint>
#include <string>

namespace kdtune {

enum class QueryBackend : std::int64_t {
  kCompact = 0,  ///< binary compact kd-tree (PR 1 serving layout)
  kWide4 = 1,    ///< 4-wide collapsed nodes, SSE/NEON slab kernel
  kWide8 = 2,    ///< 8-wide collapsed nodes, AVX2 slab kernel
  kBvh = 3,      ///< binned SAH BVH (different structure, same interface)
};

inline constexpr std::int64_t kQueryBackendCount = 4;
inline constexpr const char* kQueryBackendParam = "query_backend";

inline const char* to_string(QueryBackend backend) noexcept {
  switch (backend) {
    case QueryBackend::kCompact: return "compact";
    case QueryBackend::kWide4: return "wide4";
    case QueryBackend::kWide8: return "wide8";
    case QueryBackend::kBvh: return "bvh";
  }
  return "compact";
}

/// Clamps out-of-range tuner values (the search proposes only in-range
/// indices, but deserialized or hand-written configs may not).
inline QueryBackend backend_from_int(std::int64_t v) noexcept {
  if (v < 0 || v >= kQueryBackendCount) return QueryBackend::kCompact;
  return static_cast<QueryBackend>(v);
}

/// Parses a backend name; returns false (leaving `out` untouched) on an
/// unknown name.
inline bool backend_from_string(const std::string& name,
                                QueryBackend& out) noexcept {
  if (name == "compact") {
    out = QueryBackend::kCompact;
  } else if (name == "wide4") {
    out = QueryBackend::kWide4;
  } else if (name == "wide8") {
    out = QueryBackend::kWide8;
  } else if (name == "bvh") {
    out = QueryBackend::kBvh;
  } else {
    return false;
  }
  return true;
}

}  // namespace kdtune
