#include "kdtree/simd_dispatch.hpp"

#include <cstdlib>

namespace kdtune {

namespace {

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__) || \
    defined(_M_IX86)
#define KDTUNE_ARCH_X86 1
#endif
#if defined(__ARM_NEON) || defined(__ARM_NEON__)
#define KDTUNE_ARCH_NEON 1
#endif

SimdLevel cpu_level() noexcept {
#if defined(KDTUNE_ARCH_X86)
#if defined(__GNUC__) || defined(__clang__)
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
  return SimdLevel::kSse;  // SSE2 is the x86-64 baseline
#elif defined(KDTUNE_ARCH_NEON)
  return SimdLevel::kNeon;
#else
  return SimdLevel::kScalar;
#endif
}

/// Weaker-of for the override clamp. NEON and the SSE/AVX2 ladder never
/// coexist, so cross-architecture requests clamp to scalar.
SimdLevel clamp_to(SimdLevel requested, SimdLevel available) noexcept {
  if (requested == SimdLevel::kScalar || available == SimdLevel::kScalar) {
    return SimdLevel::kScalar;
  }
  if (requested == SimdLevel::kNeon || available == SimdLevel::kNeon) {
    return requested == available ? SimdLevel::kNeon : SimdLevel::kScalar;
  }
  return static_cast<int>(requested) < static_cast<int>(available) ? requested
                                                                   : available;
}

SimdLevel resolve() noexcept {
  SimdLevel level = clamp_to(cpu_level(), simd_compiled_level());
  if (const char* env = std::getenv("KDTUNE_SIMD")) {
    SimdLevel requested;
    if (simd_level_from_string(env, requested)) {
      level = clamp_to(requested, level);
    }
  }
  return level;
}

}  // namespace

bool simd_level_from_string(const std::string& name, SimdLevel& out) noexcept {
  if (name == "scalar") {
    out = SimdLevel::kScalar;
  } else if (name == "sse") {
    out = SimdLevel::kSse;
  } else if (name == "avx2") {
    out = SimdLevel::kAvx2;
  } else if (name == "neon") {
    out = SimdLevel::kNeon;
  } else {
    return false;
  }
  return true;
}

SimdLevel simd_compiled_level() noexcept {
#if defined(KDTUNE_ARCH_X86)
#if defined(KDTUNE_HAVE_AVX2_TU)
  return SimdLevel::kAvx2;
#else
  return SimdLevel::kSse;
#endif
#elif defined(KDTUNE_ARCH_NEON)
  return SimdLevel::kNeon;
#else
  return SimdLevel::kScalar;
#endif
}

SimdLevel detect_simd_level() noexcept {
  static const SimdLevel level = resolve();
  return level;
}

}  // namespace kdtune
