// Baseline wide-traversal kernels: the portable scalar fallback plus the
// ISA tiers that need no extra compile flags — SSE2 (the x86-64 baseline)
// and NEON (implied by the AArch64 target). The AVX2 kernel lives in its own
// TU (wide_kernels_avx2.cpp) behind a -mavx2 compile gate.
//
// All kernels implement the same conservative slab test (see
// wide_traverse.hpp), visit iff tn <= tf && tn < bound. The x86 kernels use
// per-ray near/far plane selection with NaN-dropping min/max folds; NEON
// keeps the min/max-swap formulation with an explicit ordered-lane blend
// because its vmin/vmax propagate NaN instead of preferring one operand.
// No FMA anywhere — fused rounding would perturb entry distances relative
// to the scalar reference.

#include <cmath>
#include <cstdint>
#include <limits>

#include "kdtree/wide_traverse.hpp"

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__) || \
    defined(_M_IX86)
#define KDTUNE_WIDE_X86 1
#include <emmintrin.h>
#endif
#if defined(__ARM_NEON) || defined(__ARM_NEON__)
#define KDTUNE_WIDE_NEON 1
#include <arm_neon.h>
#endif

namespace kdtune::wide_detail {

namespace {
[[maybe_unused]] constexpr float kInf = std::numeric_limits<float>::infinity();
}  // namespace

Hit closest_hit_scalar(const WideTreeView<4>& view, const Ray& ray) {
  return wide_traverse<false, ScalarSlabKernel<4>>(view, ray);
}
Hit closest_hit_scalar(const WideTreeView<8>& view, const Ray& ray) {
  return wide_traverse<false, ScalarSlabKernel<8>>(view, ray);
}
Hit any_hit_scalar(const WideTreeView<4>& view, const Ray& ray) {
  return wide_traverse<true, ScalarSlabKernel<4>>(view, ray);
}
Hit any_hit_scalar(const WideTreeView<8>& view, const Ray& ray) {
  return wide_traverse<true, ScalarSlabKernel<8>>(view, ray);
}

#if defined(KDTUNE_WIDE_X86)

namespace {

/// Per-ray near/far slab-plane selection, shared by the SSE kernels: the
/// sign of inv_dir decides once per ray whether lo or hi is the entry plane
/// on each axis (see the AVX2 kernel for the full rationale). x86
/// maxps/minps return the second operand when the first is NaN, which drops
/// 0 * inf lanes as "axis unconstrained" without an unordered-compare blend.
template <int W>
struct SseRay {
  __m128 o[3];
  __m128 inv[3];
  __m128 tmin;
  int near_off[3];  ///< float offset of the entry plane row in the node
  int far_off[3];   ///< float offset of the exit plane row

  explicit SseRay(const Ray& ray) noexcept {
    const float os[3] = {ray.origin.x, ray.origin.y, ray.origin.z};
    const float is[3] = {ray.inv_dir.x, ray.inv_dir.y, ray.inv_dir.z};
    for (int a = 0; a < 3; ++a) {
      o[a] = _mm_set1_ps(os[a]);
      inv[a] = _mm_set1_ps(is[a]);
      // lo[a] row sits at float offset a*W, hi[a] at 3*W + a*W.
      const bool toward_hi = !std::signbit(is[a]);
      near_off[a] = toward_hi ? a * W : (3 + a) * W;
      far_off[a] = toward_hi ? (3 + a) * W : a * W;
    }
    tmin = _mm_set1_ps(ray.t_min);
  }

  /// Tests 4 lanes whose slabs start at lane offset `off` in `node`'s SoA
  /// arrays; returns a 4-bit visit mask (unclamped by count).
  std::uint32_t quad(const WideNode<W>& node, int off, float bound,
                     float* tnear) const noexcept {
    const float* const base = node.lo[0] + off;
    __m128 tn = tmin;
    __m128 tf = _mm_set1_ps(kInf);
    for (int a = 0; a < 3; ++a) {
      const __m128 t0 = _mm_mul_ps(
          _mm_sub_ps(_mm_loadu_ps(base + near_off[a]), o[a]), inv[a]);
      const __m128 t1 = _mm_mul_ps(
          _mm_sub_ps(_mm_loadu_ps(base + far_off[a]), o[a]), inv[a]);
      tn = _mm_max_ps(t0, tn);  // NaN t0 keeps tn: axis unconstrained
      tf = _mm_min_ps(t1, tf);
    }
    const __m128 ok = _mm_and_ps(_mm_cmple_ps(tn, tf),
                                 _mm_cmplt_ps(tn, _mm_set1_ps(bound)));
    _mm_storeu_ps(tnear + off, tn);
    return static_cast<std::uint32_t>(_mm_movemask_ps(ok));
  }
};

struct SseKernel4 : SseRay<4> {
  using SseRay<4>::SseRay;
  std::uint32_t visit(const WideNode<4>& node, float bound,
                      float* tnear) const noexcept {
    return quad(node, 0, bound, tnear) & ((1u << node.count) - 1u);
  }
};

/// 8-wide nodes on pre-AVX2 hosts: two 4-lane halves per node.
struct SseKernel8 : SseRay<8> {
  using SseRay<8>::SseRay;
  std::uint32_t visit(const WideNode<8>& node, float bound,
                      float* tnear) const noexcept {
    const std::uint32_t mask =
        quad(node, 0, bound, tnear) | (quad(node, 4, bound, tnear) << 4);
    return mask & ((1u << node.count) - 1u);
  }
};

}  // namespace

Hit closest_hit_sse(const WideTreeView<4>& view, const Ray& ray) {
  return wide_traverse<false, SseKernel4>(view, ray);
}
Hit closest_hit_sse(const WideTreeView<8>& view, const Ray& ray) {
  return wide_traverse<false, SseKernel8>(view, ray);
}
Hit any_hit_sse(const WideTreeView<4>& view, const Ray& ray) {
  return wide_traverse<true, SseKernel4>(view, ray);
}
Hit any_hit_sse(const WideTreeView<8>& view, const Ray& ray) {
  return wide_traverse<true, SseKernel8>(view, ray);
}

#endif  // KDTUNE_WIDE_X86

#if defined(KDTUNE_WIDE_NEON)

namespace {

/// Folds one axis' slabs into the running [tn, tf] interval for 4 lanes.
inline void slab_axis_neon(const float* lo, const float* hi, float32x4_t o,
                           float32x4_t inv, float32x4_t& tn,
                           float32x4_t& tf) noexcept {
  const float32x4_t t0 = vmulq_f32(vsubq_f32(vld1q_f32(lo), o), inv);
  const float32x4_t t1 = vmulq_f32(vsubq_f32(vld1q_f32(hi), o), inv);
  // ord lanes have both t0 and t1 non-NaN; the others get (-inf, +inf).
  const uint32x4_t ord = vandq_u32(vceqq_f32(t0, t0), vceqq_f32(t1, t1));
  const float32x4_t near =
      vbslq_f32(ord, vminq_f32(t0, t1), vdupq_n_f32(-kInf));
  const float32x4_t far =
      vbslq_f32(ord, vmaxq_f32(t0, t1), vdupq_n_f32(kInf));
  tn = vmaxq_f32(tn, near);
  tf = vminq_f32(tf, far);
}

struct NeonRay {
  float32x4_t ox, oy, oz;
  float32x4_t ix, iy, iz;
  float32x4_t tmin;

  explicit NeonRay(const Ray& ray) noexcept
      : ox(vdupq_n_f32(ray.origin.x)),
        oy(vdupq_n_f32(ray.origin.y)),
        oz(vdupq_n_f32(ray.origin.z)),
        ix(vdupq_n_f32(ray.inv_dir.x)),
        iy(vdupq_n_f32(ray.inv_dir.y)),
        iz(vdupq_n_f32(ray.inv_dir.z)),
        tmin(vdupq_n_f32(ray.t_min)) {}

  template <int W>
  std::uint32_t quad(const WideNode<W>& node, int off, float bound,
                     float* tnear) const noexcept {
    float32x4_t tn = tmin;
    float32x4_t tf = vdupq_n_f32(kInf);
    slab_axis_neon(node.lo[0] + off, node.hi[0] + off, ox, ix, tn, tf);
    slab_axis_neon(node.lo[1] + off, node.hi[1] + off, oy, iy, tn, tf);
    slab_axis_neon(node.lo[2] + off, node.hi[2] + off, oz, iz, tn, tf);
    const uint32x4_t ok =
        vandq_u32(vcleq_f32(tn, tf), vcltq_f32(tn, vdupq_n_f32(bound)));
    vst1q_f32(tnear + off, tn);
    std::uint32_t lanebits[4];
    vst1q_u32(lanebits, ok);
    return (lanebits[0] & 1u) | ((lanebits[1] & 1u) << 1) |
           ((lanebits[2] & 1u) << 2) | ((lanebits[3] & 1u) << 3);
  }
};

struct NeonKernel4 : NeonRay {
  using NeonRay::NeonRay;
  std::uint32_t visit(const WideNode<4>& node, float bound,
                      float* tnear) const noexcept {
    return quad(node, 0, bound, tnear) & ((1u << node.count) - 1u);
  }
};

struct NeonKernel8 : NeonRay {
  using NeonRay::NeonRay;
  std::uint32_t visit(const WideNode<8>& node, float bound,
                      float* tnear) const noexcept {
    const std::uint32_t mask =
        quad(node, 0, bound, tnear) | (quad(node, 4, bound, tnear) << 4);
    return mask & ((1u << node.count) - 1u);
  }
};

}  // namespace

Hit closest_hit_neon(const WideTreeView<4>& view, const Ray& ray) {
  return wide_traverse<false, NeonKernel4>(view, ray);
}
Hit closest_hit_neon(const WideTreeView<8>& view, const Ray& ray) {
  return wide_traverse<false, NeonKernel8>(view, ray);
}
Hit any_hit_neon(const WideTreeView<4>& view, const Ray& ray) {
  return wide_traverse<true, NeonKernel4>(view, ray);
}
Hit any_hit_neon(const WideTreeView<8>& view, const Ray& ray) {
  return wide_traverse<true, NeonKernel8>(view, ray);
}

#endif  // KDTUNE_WIDE_NEON

}  // namespace kdtune::wide_detail
