#pragma once

// The shared leaf-intersection core for compact-layout trees. This is the
// leaf branch of CompactKdTree::hit_core, extracted verbatim so the wide-node
// traversal reuses the exact same code path: inlined single-triangle leaves,
// a plain sequential scan for blocks of <= 4, and the branchless
// chunk-and-argmin pass (which the compiler vectorizes) for larger blocks.
// Because every backend funnels leaf tests through this one function — and
// the Möller–Trumbore core itself lives in geom/triangle.hpp — closest-hit
// distances are bit-identical across binary, wide4 and wide8 traversal.

#include <algorithm>
#include <cstdint>
#include <limits>

#include "geom/ray.hpp"
#include "geom/triangle.hpp"
#include "kdtree/compact_tree.hpp"

namespace kdtune::leaf_detail {

/// Intersects `ray` against compact leaf `node`, shrinking `ray_t_max` and
/// updating `best` on closest-hit improvements. With kAnyHit, tests against
/// the fixed ray.t_max bound and returns true on the first hit (the caller
/// must return immediately); otherwise always returns false.
template <bool kAnyHit>
inline bool intersect_leaf_blocks(const CompactNode node, const Ray& ray,
                                  const Triangle* const tris,
                                  const float* const soa,
                                  const std::uint32_t* const leaf_tris,
                                  float& ray_t_max, Hit& best) {
  constexpr float kInf = std::numeric_limits<float>::infinity();
  const std::uint32_t count = node.prim_count();
  if (count == 1) {
    // Inlined single-triangle leaf: edges computed on the fly.
    const Triangle& tri = tris[node.prim];
    const float bound = kAnyHit ? ray.t_max : ray_t_max;
    float t, u, v;
    if (intersect_edges(ray.origin, ray.dir, ray.t_min, bound, tri.a,
                        tri.b - tri.a, tri.c - tri.a, t, u, v)) {
      best = {t, node.prim, u, v};
      if constexpr (kAnyHit) return true;
      ray_t_max = t;
    }
  } else if (count > 1) {
    // Block evaluation over the leaf's SoA slab: a branchless pass
    // fills per-triangle hit distances (+inf = miss), then a scalar
    // argmin scan picks the winner. Equivalent to the sequential
    // shrinking scan — the argmin keeps the first of equal distances,
    // exactly like `tt >= t_max` rejects a tie against an earlier hit —
    // but the straight-line inner loop vectorizes across the block.
    const float* const ax = soa + 9ull * node.prim;
    const float* const ay = ax + count;
    const float* const az = ay + count;
    const float* const e1x = az + count;
    const float* const e1y = e1x + count;
    const float* const e1z = e1y + count;
    const float* const e2x = e1z + count;
    const float* const e2y = e2x + count;
    const float* const e2z = e2y + count;
    const std::uint32_t* const ids = leaf_tris + node.prim;

    if (count <= 4) {
      // Tiny blocks (the common case for well-built SAH trees) take a
      // plain sequential scan over the SoA slots: identical test order
      // and shrinking bound, none of the chunk machinery.
      for (std::uint32_t k = 0; k < count; ++k) {
        const float bound = kAnyHit ? ray.t_max : ray_t_max;
        float t, u, v;
        if (intersect_edges(ray.origin, ray.dir, ray.t_min, bound,
                            Vec3{ax[k], ay[k], az[k]},
                            Vec3{e1x[k], e1y[k], e1z[k]},
                            Vec3{e2x[k], e2y[k], e2z[k]}, t, u, v)) {
          best = {t, ids[k], u, v};
          if constexpr (kAnyHit) return true;
          ray_t_max = t;
        }
      }
    } else {
      constexpr std::uint32_t kChunk = 128;
      float ts[kChunk], us[kChunk], vs[kChunk];
      for (std::uint32_t off = 0; off < count; off += kChunk) {
        const std::uint32_t n = std::min(kChunk, count - off);
        const float bound = kAnyHit ? ray.t_max : ray_t_max;
        for (std::uint32_t k = 0; k < n; ++k) {
          ts[k] = intersect_edges_t(
              ray.origin, ray.dir, ray.t_min, bound,
              Vec3{ax[off + k], ay[off + k], az[off + k]},
              Vec3{e1x[off + k], e1y[off + k], e1z[off + k]},
              Vec3{e2x[off + k], e2y[off + k], e2z[off + k]}, us[k], vs[k]);
        }
        float m = kInf;
        std::uint32_t mk = 0;
        for (std::uint32_t k = 0; k < n; ++k) {
          if (ts[k] < m) {
            m = ts[k];
            mk = k;
          }
        }
        if (m < kInf) {
          best = {m, ids[off + mk], us[mk], vs[mk]};
          if constexpr (kAnyHit) return true;
          ray_t_max = m;
        }
      }
    }
  }
  return false;
}

}  // namespace kdtune::leaf_detail
