#pragma once

// Flat kd-tree node. One layout serves every builder: interior nodes store the
// split plane and both child indices (children are *not* required to be
// adjacent, which the breadth-first builders exploit); leaves store a range
// into the tree's shared primitive-index array.

#include <cstdint>

#include "geom/vec3.hpp"

namespace kdtune {

struct KdNode {
  static constexpr std::uint32_t kLeaf = 3;      ///< flags value for leaves
  static constexpr std::uint32_t kDeferred = 4;  ///< lazy: unexpanded subtree

  float split = 0.0f;      ///< interior: plane offset on `axis`
  std::uint32_t flags = kLeaf;  ///< 0/1/2 = interior split axis, 3 = leaf,
                                ///< 4 = deferred (lazy trees only)
  std::uint32_t a = 0;     ///< interior: left child index; leaf: first prim
  std::uint32_t b = 0;     ///< interior: right child index; leaf: prim count

  bool is_leaf() const noexcept { return flags == kLeaf; }
  bool is_deferred() const noexcept { return flags == kDeferred; }
  bool is_interior() const noexcept { return flags < 3; }

  Axis axis() const noexcept { return static_cast<Axis>(flags); }

  static KdNode make_leaf(std::uint32_t first_prim, std::uint32_t count) noexcept {
    return {0.0f, kLeaf, first_prim, count};
  }

  static KdNode make_interior(Axis axis, float split, std::uint32_t left,
                              std::uint32_t right) noexcept {
    return {split, static_cast<std::uint32_t>(axis), left, right};
  }

  static KdNode make_deferred(std::uint32_t first_prim, std::uint32_t count) noexcept {
    return {0.0f, kDeferred, first_prim, count};
  }
};

}  // namespace kdtune
