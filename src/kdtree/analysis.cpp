#include "kdtree/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_set>

namespace kdtune {

TreeAnalysis analyze_tree(const KdTree& tree,
                          std::size_t max_leaf_size_bucket) {
  TreeAnalysis out;
  out.leaf_size_histogram.assign(max_leaf_size_bucket + 1, 0);

  const auto nodes = tree.nodes();
  const auto prim_indices = tree.prim_indices();
  if (nodes.empty()) return out;

  struct Frame {
    std::uint32_t node;
    std::size_t depth;
  };
  std::vector<Frame> stack{{tree.root(), 0}};
  std::unordered_set<std::uint32_t> distinct;
  std::size_t total_refs = 0;
  std::size_t leaf_count = 0;
  double depth_sum = 0.0;

  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const KdNode& node = nodes[f.node];
    if (node.is_interior()) {
      stack.push_back({node.a, f.depth + 1});
      stack.push_back({node.b, f.depth + 1});
      continue;
    }
    ++leaf_count;
    depth_sum += static_cast<double>(f.depth);
    if (out.leaf_depth_histogram.size() <= f.depth) {
      out.leaf_depth_histogram.resize(f.depth + 1, 0);
    }
    ++out.leaf_depth_histogram[f.depth];

    const std::size_t bucket =
        std::min<std::size_t>(node.b, max_leaf_size_bucket);
    ++out.leaf_size_histogram[bucket];
    total_refs += node.b;
    for (std::uint32_t k = 0; k < node.b; ++k) {
      distinct.insert(prim_indices[node.a + k]);
    }
  }

  out.duplication_factor =
      distinct.empty() ? 0.0
                       : static_cast<double>(total_refs) /
                             static_cast<double>(distinct.size());
  if (leaf_count > 1) {
    out.balance = (depth_sum / static_cast<double>(leaf_count)) /
                  std::log2(static_cast<double>(leaf_count));
  } else {
    out.balance = 1.0;
  }
  return out;
}

std::string TreeAnalysis::to_string() const {
  std::ostringstream os;
  os << "duplication factor " << duplication_factor << ", balance " << balance
     << "\nleaf depths:";
  for (std::size_t d = 0; d < leaf_depth_histogram.size(); ++d) {
    if (leaf_depth_histogram[d] > 0) {
      os << ' ' << d << ':' << leaf_depth_histogram[d];
    }
  }
  os << "\nleaf sizes:";
  for (std::size_t k = 0; k < leaf_size_histogram.size(); ++k) {
    if (leaf_size_histogram[k] > 0) {
      os << ' ' << k << (k + 1 == leaf_size_histogram.size() ? "+" : "") << ':'
         << leaf_size_histogram[k];
    }
  }
  return os.str();
}

}  // namespace kdtune
