#include "kdtree/recursive_builder.hpp"

#include <cmath>
#include <utility>

#include "obs/trace.hpp"

namespace kdtune {

SplitCandidate SplitStrategy::find_best_split(const SahParams& sah,
                                              const AABB& node_bounds,
                                              std::span<const PrimRef> prims,
                                              ThreadPool&) const {
  return find_best_split_sweep(sah, node_bounds, prims);
}

void SplitStrategy::partition(std::span<const PrimRef> prims,
                              std::span<const Triangle> tris,
                              const SplitCandidate& split, const AABB& left_box,
                              const AABB& right_box, std::vector<PrimRef>& left,
                              std::vector<PrimRef>& right, bool clip_straddlers,
                              ThreadPool&) const {
  partition_prims(prims, tris, split, left_box, right_box, left, right,
                  clip_straddlers);
}

int task_depth_for(std::int64_t s, unsigned concurrency) noexcept {
  const double subtrees =
      static_cast<double>(std::max<std::int64_t>(1, s)) * concurrency;
  const int depth = static_cast<int>(std::floor(std::log2(subtrees)));
  return std::max(0, depth);
}

namespace {

struct BuildContext {
  SahParams sah;
  int max_depth;
  int task_depth;
  const SplitStrategy* strategy;
  ThreadPool* pool;
  std::span<const Triangle> tris;
  bool clip_straddlers;
};

std::unique_ptr<BuildNode> build_rec(const BuildContext& ctx,
                                     std::vector<PrimRef> prims,
                                     const AABB& box, int depth) {
  if (prims.size() <= 1 || depth >= ctx.max_depth) {
    return BuildNode::make_leaf(prims);
  }

  const SplitCandidate best =
      ctx.strategy->find_best_split(ctx.sah, box, prims, *ctx.pool);
  if (should_terminate(ctx.sah, prims.size(), best)) {
    return BuildNode::make_leaf(prims);
  }

  const auto [lbox, rbox] = box.split(best.axis, best.position);
  std::vector<PrimRef> left, right;
  ctx.strategy->partition(prims, ctx.tris, best, lbox, rbox, left, right,
                          ctx.clip_straddlers, *ctx.pool);
  // Free the parent's working set before recursing: peak memory of a deep
  // build would otherwise be O(n * depth).
  prims.clear();
  prims.shrink_to_fit();

  auto node = std::make_unique<BuildNode>();
  node->leaf = false;
  node->axis = best.axis;
  node->split = best.position;

  if (depth < ctx.task_depth && ctx.pool->worker_count() > 0) {
    // Node-level parallelism: the left subtree becomes a task, the right
    // subtree is built by this thread (which also helps drain the queue
    // while waiting).
    TaskGroup group(*ctx.pool);
    group.run([&ctx, &node, l = std::move(left), lbox = lbox, depth]() mutable {
      node->left = build_rec(ctx, std::move(l), lbox, depth + 1);
    });
    node->right = build_rec(ctx, std::move(right), rbox, depth + 1);
    group.wait();
  } else {
    node->left = build_rec(ctx, std::move(left), lbox, depth + 1);
    node->right = build_rec(ctx, std::move(right), rbox, depth + 1);
  }
  return node;
}

}  // namespace

std::unique_ptr<KdTree> recursive_build_tree(std::span<const Triangle> tris,
                                             const BuildConfig& config,
                                             ThreadPool& pool, int task_depth,
                                             const SplitStrategy& strategy) {
  TraceSpan build_span("build.recursive", "build");
  std::vector<PrimRef> refs = make_prim_refs(tris);
  const AABB bounds = bounds_of_refs(refs);

  BuildContext ctx{SahParams::from_config(config),
                   config.resolved_max_depth(refs.size()),
                   task_depth,
                   &strategy,
                   &pool,
                   tris,
                   config.clip_straddlers};

  std::unique_ptr<BuildNode> root;
  if (refs.empty()) {
    root = BuildNode::make_leaf({});
  } else {
    root = build_rec(ctx, std::move(refs), bounds, 0);
  }

  FlatTree flat = flatten(*root);
  return std::make_unique<KdTree>(
      std::vector<Triangle>(tris.begin(), tris.end()), std::move(flat.nodes),
      std::move(flat.prim_indices), flat.root, bounds);
}

}  // namespace kdtune
