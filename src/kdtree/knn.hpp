#pragma once

// Shared k-nearest-neighbor collection core for the best-first point queries
// (nearest / nearest_k / nearest_within) of every tree structure.
//
// All trees and the brute-force oracles order candidates the same way:
// lexicographically by (distance_sq, triangle id). Distances are bit
// identical across structures (every implementation calls the same
// closest_point_on_triangle per triangle), so with a deterministic tie-break
// the *entire result set — ids included —* is identical no matter which tree
// found it. That is what lets the differential fuzzer compare kNN results
// exactly instead of "distances agree, ids may differ".
//
// The pruning contract that makes the tie-break traversal-order-independent:
// a node box may be skipped only when its minimum distance is *strictly*
// greater than bound(). A box at exactly bound() can still contain an
// equal-distance, lower-id candidate that must displace the current worst.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "kdtree/tree.hpp"

namespace kdtune {

/// Lexicographic candidate order: distance first, triangle id second.
inline bool knn_before(const NearestResult& a,
                       const NearestResult& b) noexcept {
  return a.distance_sq < b.distance_sq ||
         (a.distance_sq == b.distance_sq && a.triangle < b.triangle);
}

/// Collects the up-to-k best candidates within a search radius. A max-heap
/// keyed by knn_before keeps the current worst at the front; offers are
/// deduplicated by triangle id because straddlers appear in several leaves
/// (k stays small, so the linear scan is cheaper than a hash set).
class KnnCollector {
 public:
  KnnCollector(std::size_t k, float max_distance)
      : k_(std::max<std::size_t>(k, 1)),
        max_dist_sq_(std::max(max_distance, 0.0f) *
                     std::max(max_distance, 0.0f)) {
    heap_.reserve(std::min<std::size_t>(k_, 64));
  }

  /// Offers one candidate; returns true if it entered the result set.
  /// Radius acceptance is inclusive (d == r^2 is inside) — the brute-force
  /// oracles apply the identical predicate.
  bool offer(std::uint32_t tri, const Vec3& cp, float dist_sq) {
    if (dist_sq > max_dist_sq_) return false;
    const NearestResult cand{tri, cp, dist_sq};
    if (heap_.size() == k_ && !knn_before(cand, heap_.front())) return false;
    for (const NearestResult& have : heap_) {
      if (have.triangle == tri) return false;  // straddler: already collected
    }
    if (heap_.size() < k_) {
      heap_.push_back(cand);
      std::push_heap(heap_.begin(), heap_.end(), knn_before);
    } else {
      std::pop_heap(heap_.begin(), heap_.end(), knn_before);
      heap_.back() = cand;
      std::push_heap(heap_.begin(), heap_.end(), knn_before);
    }
    return true;
  }

  /// Boxes with min-distance *strictly* greater than this cannot improve the
  /// result set; boxes at exactly this distance still can (equal-distance
  /// lower-id ties), so callers prune with `dist_sq > bound()`, never `>=`.
  float bound() const noexcept {
    return heap_.size() == k_ ? heap_.front().distance_sq : max_dist_sq_;
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  /// The single best candidate (k == 1 usage), or an invalid result.
  NearestResult best() const noexcept {
    NearestResult best;
    for (const NearestResult& c : heap_) {
      if (knn_before(c, best) || !best.valid()) best = c;
    }
    return best;
  }

  /// Appends the collected candidates to `out`, sorted ascending by
  /// (distance_sq, id). Consumes the heap.
  void take_sorted(std::vector<NearestResult>& out) {
    std::sort_heap(heap_.begin(), heap_.end(), knn_before);
    out.insert(out.end(), heap_.begin(), heap_.end());
    heap_.clear();
  }

 private:
  std::size_t k_;
  float max_dist_sq_;
  std::vector<NearestResult> heap_;  ///< max-heap: front = current worst
};

}  // namespace kdtune
