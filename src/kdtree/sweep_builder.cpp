// Sequential SAH sweep builder: the Wald & Havran plane selection run
// single-threaded with per-node event re-sorting (O(n log^2 n) total). It is
// the correctness reference for every parallel variant and the expansion
// engine of the lazy tree.

#include "kdtree/recursive_builder.hpp"

namespace kdtune {

namespace {

class SweepBuilder final : public Builder {
 public:
  std::string_view name() const noexcept override { return "sweep"; }

  std::unique_ptr<KdTreeBase> build(std::span<const Triangle> tris,
                                    const BuildConfig& config,
                                    ThreadPool& pool) const override {
    static const SplitStrategy sequential;
    return recursive_build_tree(tris, config, pool, /*task_depth=*/0,
                                sequential);
  }
};

}  // namespace

std::unique_ptr<Builder> make_sweep_builder() {
  return std::make_unique<SweepBuilder>();
}

}  // namespace kdtune
