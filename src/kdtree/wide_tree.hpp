#pragma once

// Wide-node serving layout — the MBVH/QBVH-style answer to idle SIMD lanes.
//
// A WideKdTree<W> collapses a CompactKdTree's binary interior structure into
// W-wide nodes: each wide node cuts the binary tree log2(W) levels deep and
// stores its up-to-W surviving subtree roots as children, with the child cell
// AABBs transposed into SoA slabs (lo.x[W], lo.y[W], ... hi.z[W]) so one ray
// tests all children in a handful of vector min/max ops. Children are either
// further wide nodes or *compact leaves* — leaf storage is not duplicated:
// the wide tree keeps a shared_ptr to its source CompactKdTree and
// intersects leaves through the same leaf-local SoA triangle blocks
// (kdtree/leaf_blocks.hpp), which is what makes hit distances bit-identical
// across backends.
//
// Traversal visits a conservative superset of the binary tree's cells (slab
// tests against the explicit cell boxes, NaN axes treated as unconstrained),
// orders children front-to-back by slab entry distance, and prunes popped
// cells against the shrinking closest-hit bound — so extra visits can only
// cost time, never change a result.
//
// The slab kernel is chosen at construction from runtime CPU detection
// (kdtree/simd_dispatch.hpp): AVX2 for 8-wide where compiled in, SSE2 /
// NEON for 4-wide (8-wide runs as two 4-lane halves below AVX2), and a
// semantically identical scalar loop as the portable fallback.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "kdtree/compact_tree.hpp"
#include "kdtree/query_backend.hpp"
#include "kdtree/simd_dispatch.hpp"
#include "kdtree/tree.hpp"

namespace kdtune {

/// One W-wide node: SoA child slabs + child references. `child[i] >= 0`
/// indexes another wide node; `child[i] < 0` encodes a compact-tree leaf as
/// `~child[i]` (index into the source CompactKdTree's node array). Lanes
/// `>= count` are padded with empty slabs (+inf lo, -inf hi) so kernels can
/// test all W lanes unconditionally.
template <int W>
struct alignas(W >= 8 ? 32 : 16) WideNode {
  float lo[3][W];  ///< child slab minima, SoA by axis
  float hi[3][W];  ///< child slab maxima, SoA by axis
  std::int32_t child[W];
  std::uint32_t count;  ///< live lanes in [0, W]
};

/// Backend-erasing base: serving layers hold wide trees behind KdTreeBase
/// and use this interface to reach the shared source tree (serialization,
/// packet fallback) without knowing W.
class WideTreeBase : public KdTreeBase {
 public:
  virtual int width() const noexcept = 0;
  virtual QueryBackend backend() const noexcept = 0;

  const CompactKdTree& source() const noexcept { return *source_; }
  const std::shared_ptr<const CompactKdTree>& source_ptr() const noexcept {
    return source_;
  }
  /// The slab-kernel tier this tree dispatches to (fixed at construction).
  SimdLevel simd_level() const noexcept { return level_; }

  // Non-ray queries and metadata delegate to the source compact tree — the
  // wide layout only accelerates ray traversal. Because the source is shared
  // (not copied), these answers are bit-identical across set_backend hot
  // switches.
  void query_range(const AABB& box,
                   std::vector<std::uint32_t>& out) const override {
    source_->query_range(box, out);
  }
  NearestResult nearest(const Vec3& point) const override {
    return source_->nearest(point);
  }
  const AABB& bounds() const noexcept override { return source_->bounds(); }
  std::span<const Triangle> triangles() const noexcept override {
    return source_->triangles();
  }
  TreeStats stats() const override { return source_->stats(); }

 protected:
  explicit WideTreeBase(std::shared_ptr<const CompactKdTree> source,
                        SimdLevel level)
      : source_(std::move(source)), level_(level) {}

  void do_nearest_k(const Vec3& point, std::size_t k,
                    std::vector<NearestResult>& out,
                    float max_distance) const override {
    source_->nearest_k(point, k, out, max_distance);
  }

  std::shared_ptr<const CompactKdTree> source_;
  SimdLevel level_;
};

template <int W>
class WideKdTree final : public WideTreeBase {
  static_assert(W == 4 || W == 8, "wide nodes come in 4- and 8-lane flavors");

 public:
  /// Collapses `source` into the W-wide layout. The source tree is shared,
  /// not copied (leaf blocks and triangles are read through it), so backend
  /// switches on a live scene reuse the build. `force_level` pins the slab
  /// kernel (tests / forced-fallback CI); default is runtime detection
  /// clamped to what fits W.
  explicit WideKdTree(std::shared_ptr<const CompactKdTree> source,
                      SimdLevel force_level = SimdLevel{-1});

  Hit closest_hit(const Ray& ray) const override;
  bool any_hit(const Ray& ray) const override;

  int width() const noexcept override { return W; }
  QueryBackend backend() const noexcept override {
    return W == 4 ? QueryBackend::kWide4 : QueryBackend::kWide8;
  }

  std::span<const WideNode<W>> wide_nodes() const noexcept { return nodes_; }

 private:
  std::vector<WideNode<W>> nodes_;
};

using WideKdTree4 = WideKdTree<4>;
using WideKdTree8 = WideKdTree<8>;

extern template class WideKdTree<4>;
extern template class WideKdTree<8>;

/// Builds the wide tree for `backend` (kWide4/kWide8) over a shared compact
/// source. Convenience for the serving layers' backend switches.
std::unique_ptr<WideTreeBase> make_wide_tree(
    std::shared_ptr<const CompactKdTree> source, QueryBackend backend);

}  // namespace kdtune
