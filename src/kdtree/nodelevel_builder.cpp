// Node-level parallel builder (paper §IV-A): the naive parallelization of
// Wald & Havran's sequential algorithm — the two subtrees of every inner node
// are independent, so recursive calls spawn tasks up to a maximum depth
// derived from S (maximum subtrees per thread). Below that depth construction
// proceeds sequentially inside each task.

#include "kdtree/recursive_builder.hpp"

namespace kdtune {

namespace {

class NodeLevelBuilder final : public Builder {
 public:
  std::string_view name() const noexcept override { return "node-level"; }

  std::unique_ptr<KdTreeBase> build(std::span<const Triangle> tris,
                                    const BuildConfig& config,
                                    ThreadPool& pool) const override {
    static const SplitStrategy sequential;
    const int depth = task_depth_for(config.s, pool.concurrency());
    return recursive_build_tree(tris, config, pool, depth, sequential);
  }
};

}  // namespace

std::unique_ptr<Builder> make_nodelevel_builder();  // forward for builder.cpp

std::unique_ptr<Builder> make_nodelevel_builder() {
  return std::make_unique<NodeLevelBuilder>();
}

}  // namespace kdtune
