#include "kdtree/build_common.hpp"

#include <algorithm>

namespace kdtune {

std::vector<PrimRef> make_prim_refs(std::span<const Triangle> tris) {
  std::vector<PrimRef> refs;
  refs.reserve(tris.size());
  for (std::size_t i = 0; i < tris.size(); ++i) {
    if (tris[i].degenerate()) continue;  // zero-area: never hit, never stored
    refs.push_back({static_cast<std::uint32_t>(i), tris[i].bounds()});
  }
  return refs;
}

AABB bounds_of_refs(std::span<const PrimRef> prims) noexcept {
  AABB box;
  for (const PrimRef& p : prims) box.expand(p.bounds);
  return box;
}

void make_events(std::span<const PrimRef> prims, Axis axis,
                 std::vector<SahEvent>& events) {
  events.clear();
  events.reserve(prims.size() * 2);
  for (std::uint32_t i = 0; i < prims.size(); ++i) {
    const float lo = prims[i].bounds.lo[axis];
    const float hi = prims[i].bounds.hi[axis];
    if (lo == hi) {
      events.push_back({lo, i, SahEvent::kPlanar});
    } else {
      events.push_back({lo, i, SahEvent::kStart});
      events.push_back({hi, i, SahEvent::kEnd});
    }
  }
}

void sweep_axis(const SahParams& sah, const AABB& node_bounds, Axis axis,
                std::span<const SahEvent> events, std::size_t nb,
                SplitCandidate& best) {
  std::size_t nl = 0;
  std::size_t nr = nb;
  std::size_t i = 0;
  const std::size_t n = events.size();
  while (i < n) {
    const float pos = events[i].position;
    std::size_t ends = 0, planars = 0, starts = 0;
    // Events are grouped by position; within a group the order is
    // End < Planar < Start.
    while (i < n && events[i].position == pos && events[i].type == SahEvent::kEnd) {
      ++ends;
      ++i;
    }
    while (i < n && events[i].position == pos &&
           events[i].type == SahEvent::kPlanar) {
      ++planars;
      ++i;
    }
    while (i < n && events[i].position == pos &&
           events[i].type == SahEvent::kStart) {
      ++starts;
      ++i;
    }

    // Primitives ending here or lying in the plane leave the right side
    // before the plane is evaluated.
    nr -= ends + planars;
    const SplitCandidate cand =
        evaluate_plane(sah, node_bounds, axis, pos, nl, planars, nr, nb);
    if (cand.cost < best.cost) best = cand;
    // Primitives starting here or lying in the plane join the left side
    // for all later planes.
    nl += starts + planars;
  }
}

SplitCandidate find_best_split_sweep(const SahParams& sah,
                                     const AABB& node_bounds,
                                     std::span<const PrimRef> prims) {
  SplitCandidate best;
  std::vector<SahEvent> events;
  for (int a = 0; a < 3; ++a) {
    const Axis axis = static_cast<Axis>(a);
    if (node_bounds.lo[axis] >= node_bounds.hi[axis]) continue;  // flat node
    make_events(prims, axis, events);
    std::sort(events.begin(), events.end());
    sweep_axis(sah, node_bounds, axis, events, prims.size(), best);
  }
  return best;
}

Side classify(const PrimRef& prim, const SplitCandidate& split) noexcept {
  const float lo = prim.bounds.lo[split.axis];
  const float hi = prim.bounds.hi[split.axis];
  const float pos = split.position;
  if (lo == pos && hi == pos) {
    // A primitive lying exactly in the split plane goes to BOTH children,
    // regardless of which side the SAH counted it on (split.planar_left).
    // Placing it on one side only loses hits: a ray entering the other child
    // owns the interval up to and including t_split, its computed hit t for
    // the planar primitive can round to either side of the computed t_split,
    // and closest_hit legitimately terminates in that child without ever
    // testing the primitive. Each closed cell that touches the plane must
    // therefore list it. planar_left remains a cost-model choice only.
    return Side::kBoth;
  }
  if (hi <= pos) return Side::kLeft;
  if (lo >= pos) return Side::kRight;
  return Side::kBoth;
}

void partition_prims(std::span<const PrimRef> prims,
                     std::span<const Triangle> tris,
                     const SplitCandidate& split, const AABB& left_box,
                     const AABB& right_box, std::vector<PrimRef>& left,
                     std::vector<PrimRef>& right, bool clip_straddlers) {
  left.clear();
  right.clear();
  left.reserve(split.nl);
  right.reserve(split.nr);
  for (const PrimRef& prim : prims) {
    switch (classify(prim, split)) {
      case Side::kLeft:
        left.push_back(prim);
        break;
      case Side::kRight:
        right.push_back(prim);
        break;
      case Side::kBoth: {
        if (clip_straddlers) {
          // Perfect split: re-clip the triangle to each child box so later
          // plane positions stay tight. Empty clips (the triangle only
          // grazes the plane) are dropped.
          const AABB lb = clipped_bounds(tris[prim.tri], left_box);
          if (!lb.empty()) left.push_back({prim.tri, lb});
          const AABB rb = clipped_bounds(tris[prim.tri], right_box);
          if (!rb.empty()) right.push_back({prim.tri, rb});
        } else {
          left.push_back({prim.tri, AABB::intersect(prim.bounds, left_box)});
          right.push_back({prim.tri, AABB::intersect(prim.bounds, right_box)});
        }
        break;
      }
    }
  }
}

std::unique_ptr<BuildNode> BuildNode::make_leaf(std::span<const PrimRef> refs) {
  auto node = std::make_unique<BuildNode>();
  node->leaf = true;
  node->prims.reserve(refs.size());
  for (const PrimRef& r : refs) node->prims.push_back(r.tri);
  // A triangle can reach the same leaf through both children of an ancestor
  // split (it was duplicated, then the regions merged back); deduplicate so
  // leaves never test a triangle twice.
  std::sort(node->prims.begin(), node->prims.end());
  node->prims.erase(std::unique(node->prims.begin(), node->prims.end()),
                    node->prims.end());
  return node;
}

namespace {

std::uint32_t flatten_into(const BuildNode& node, FlatTree& out) {
  const auto index = static_cast<std::uint32_t>(out.nodes.size());
  out.nodes.emplace_back();
  if (node.leaf) {
    const auto first = static_cast<std::uint32_t>(out.prim_indices.size());
    out.prim_indices.insert(out.prim_indices.end(), node.prims.begin(),
                            node.prims.end());
    out.nodes[index] =
        KdNode::make_leaf(first, static_cast<std::uint32_t>(node.prims.size()));
    return index;
  }
  const std::uint32_t left = flatten_into(*node.left, out);
  const std::uint32_t right = flatten_into(*node.right, out);
  out.nodes[index] = KdNode::make_interior(node.axis, node.split, left, right);
  return index;
}

}  // namespace

FlatTree flatten(const BuildNode& root) {
  FlatTree out;
  out.root = flatten_into(root, out);
  return out;
}

}  // namespace kdtune
