#include "kdtree/wide_tree.hpp"

#include <limits>
#include <stdexcept>
#include <vector>

#include "kdtree/wide_traverse.hpp"
#include "obs/trace.hpp"

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__) || \
    defined(_M_IX86)
#define KDTUNE_WIDE_TREE_X86 1
#endif
#if defined(__ARM_NEON) || defined(__ARM_NEON__)
#define KDTUNE_WIDE_TREE_NEON 1
#endif

namespace kdtune {

namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

struct ChildRef {
  std::uint32_t cidx;  ///< compact node index
  AABB box;            ///< that node's cell
  bool leaf;
};

/// Collects up to W subtree roots below `cidx` by greedy frontier packing:
/// starting from the two children of `cidx`, repeatedly replace the
/// largest-surface-area interior frontier entry with its two binary children
/// until the frontier holds W entries (or nothing splittable remains). Rays
/// hit large cells most often, so spending lanes subdividing them first
/// maximises the tree-depth collapsed per wide node — a fixed-depth cut
/// (log2(W) levels) fills only ~5 of 8 lanes on real scenes because empty
/// leaves are dropped and subtrees terminate at different depths.
/// Each child carries its exact cell from `box.split`, so slab tests stay
/// bit-identical to the binary traversal's plane distances. Empty leaves are
/// dropped — the ray cannot hit anything in them, and skipping them is what
/// makes wide nodes denser than the binary tree.
void collect_children(const CompactKdTree& src, std::uint32_t cidx,
                      const AABB& box, int width,
                      std::vector<ChildRef>& out) {
  const CompactNode& root = src.nodes()[cidx];
  if (root.is_leaf()) {
    if (root.prim_count() > 0) out.push_back({cidx, box, true});
    return;
  }
  out.push_back({cidx, box, false});
  for (;;) {
    int pick = -1;
    double pick_area = -1.0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (out[i].leaf) continue;
      const double area = out[i].box.surface_area();
      if (area > pick_area) {
        pick_area = area;
        pick = static_cast<int>(i);
      }
    }
    if (pick < 0) return;  // all-leaf frontier: nothing left to split
    const CompactNode& n = src.nodes()[out[pick].cidx];
    const auto [lbox, rbox] = out[pick].box.split(n.axis(), n.split);
    ChildRef side[2] = {{out[pick].cidx + 1, lbox, false},
                        {n.right_child(), rbox, false}};
    out.erase(out.begin() + pick);
    for (ChildRef& c : side) {
      const CompactNode& cn = src.nodes()[c.cidx];
      if (cn.is_leaf()) {
        if (cn.prim_count() == 0) continue;  // drop empty leaves
        c.leaf = true;
      }
      out.push_back(c);
    }
    // A split nets at most +1 entry, so the frontier never exceeds W; it
    // can also shrink (empty-leaf children), in which case keep splitting.
    if (out.size() >= static_cast<std::size_t>(width)) return;
  }
}

/// Emits the wide node rooted at compact interior (or root leaf) `cidx` in
/// DFS preorder and returns its index. Recurses for interior children after
/// the parent is placed, patching child refs in — `out` may reallocate
/// during recursion, so the parent is always re-indexed.
template <int W>
std::int32_t emit_wide(const CompactKdTree& src, std::uint32_t cidx,
                       const AABB& box, std::vector<WideNode<W>>& out) {
  std::vector<ChildRef> children;
  children.reserve(W);
  collect_children(src, cidx, box, W, children);

  const auto my = static_cast<std::int32_t>(out.size());
  out.emplace_back();
  {
    WideNode<W>& node = out[my];
    node.count = static_cast<std::uint32_t>(children.size());
    for (int i = 0; i < W; ++i) {
      const bool live = i < static_cast<int>(children.size());
      for (int a = 0; a < 3; ++a) {
        // Dead lanes get an empty slab; they are masked off by `count`
        // anyway, but deterministic padding keeps the layout reproducible.
        node.lo[a][i] = live ? children[i].box.lo[a] : kInf;
        node.hi[a][i] = live ? children[i].box.hi[a] : -kInf;
      }
      node.child[i] = 0;
    }
  }
  for (std::size_t i = 0; i < children.size(); ++i) {
    if (children[i].leaf) {
      out[my].child[i] = ~static_cast<std::int32_t>(children[i].cidx);
    } else {
      const std::int32_t sub =
          emit_wide<W>(src, children[i].cidx, children[i].box, out);
      out[my].child[i] = sub;
    }
  }
  return my;
}

/// Lowers `level` to a kernel this binary actually contains for width `W`
/// (there is no AVX2 4-wide entry, and the AVX2 8-wide entry exists only
/// when its TU was compiled).
SimdLevel clamp_for_width(SimdLevel level, int width) noexcept {
#if defined(KDTUNE_WIDE_TREE_X86)
  if (level == SimdLevel::kNeon) return SimdLevel::kScalar;
  if (level == SimdLevel::kAvx2) {
    if (width == 4) return SimdLevel::kSse;
#if !defined(KDTUNE_HAVE_AVX2_TU)
    return SimdLevel::kSse;
#endif
  }
  return level;
#elif defined(KDTUNE_WIDE_TREE_NEON)
  (void)width;
  return level == SimdLevel::kNeon ? SimdLevel::kNeon : SimdLevel::kScalar;
#else
  (void)width;
  (void)level;
  return SimdLevel::kScalar;
#endif
}

template <bool kAnyHit, int W>
Hit run_kernel(const wide_detail::WideTreeView<W>& view, const Ray& ray,
               SimdLevel level) {
  using namespace wide_detail;
#if defined(KDTUNE_WIDE_TREE_X86)
  if constexpr (W == 8) {
#if defined(KDTUNE_HAVE_AVX2_TU)
    if (level == SimdLevel::kAvx2) {
      return kAnyHit ? any_hit_avx2(view, ray) : closest_hit_avx2(view, ray);
    }
#endif
  }
  if (level == SimdLevel::kSse || level == SimdLevel::kAvx2) {
    return kAnyHit ? any_hit_sse(view, ray) : closest_hit_sse(view, ray);
  }
#elif defined(KDTUNE_WIDE_TREE_NEON)
  if (level == SimdLevel::kNeon) {
    return kAnyHit ? any_hit_neon(view, ray) : closest_hit_neon(view, ray);
  }
#else
  (void)level;
#endif
  return kAnyHit ? any_hit_scalar(view, ray) : closest_hit_scalar(view, ray);
}

template <int W>
wide_detail::WideTreeView<W> make_view(
    const std::vector<WideNode<W>>& nodes, const CompactKdTree& src) noexcept {
  return {nodes.data(),          nodes.size(),
          src.nodes().data(),    src.triangles().data(),
          src.leaf_soa().data(), src.leaf_tris().data(),
          src.bounds()};
}

}  // namespace

template <int W>
WideKdTree<W>::WideKdTree(std::shared_ptr<const CompactKdTree> source,
                          SimdLevel force_level)
    : WideTreeBase(std::move(source), SimdLevel::kScalar) {
  if (source_ == nullptr) {
    throw std::invalid_argument("WideKdTree: null source tree");
  }
  level_ = clamp_for_width(
      force_level == SimdLevel{-1} ? detect_simd_level() : force_level, W);

  // Per-query spans would drown the trace buffer (millions of rays); the
  // wide backend's trace footprint is the layout emission itself plus the
  // registry's backend-switch instants.
  TraceSpan span(W == 4 ? "build.emit_wide4" : "build.emit_wide8", "build");
  const CompactNode root = source_->nodes().front();
  if (root.is_leaf() && root.prim_count() == 0) {
    return;  // empty scene: no wide nodes, every query misses
  }
  emit_wide<W>(*source_, 0, source_->bounds(), nodes_);
  trace_counter(W == 4 ? "build.wide4_nodes" : "build.wide8_nodes",
                static_cast<double>(nodes_.size()), "build");
}

template <int W>
Hit WideKdTree<W>::closest_hit(const Ray& ray) const {
  return run_kernel<false>(make_view(nodes_, *source_), ray, level_);
}

template <int W>
bool WideKdTree<W>::any_hit(const Ray& ray) const {
  return run_kernel<true>(make_view(nodes_, *source_), ray, level_).valid();
}

template class WideKdTree<4>;
template class WideKdTree<8>;

std::unique_ptr<WideTreeBase> make_wide_tree(
    std::shared_ptr<const CompactKdTree> source, QueryBackend backend) {
  switch (backend) {
    case QueryBackend::kWide4:
      return std::make_unique<WideKdTree4>(std::move(source));
    case QueryBackend::kWide8:
      return std::make_unique<WideKdTree8>(std::move(source));
    default:
      throw std::invalid_argument("make_wide_tree: backend is not wide");
  }
}

}  // namespace kdtune
