#pragma once

// Internal: the wide-node traversal loop and the portable scalar slab
// kernel, shared by the per-ISA kernel translation units. Not installed API —
// include only from kdtree/wide_*.cpp and tests that exercise kernels
// directly.
//
// Structure: each kernel TU instantiates wide_traverse<> with its own slab
// kernel type. The traversal itself is ISA-agnostic — order children
// front-to-back by slab entry distance, prune popped cells against the
// shrinking closest-hit bound, intersect compact leaves through the shared
// leaf blocks. A kernel only answers one question: "which of this node's
// child slabs does the ray enter before `bound`, and where?"
//
// Correctness contract for kernels (what keeps results bit-identical to the
// binary traversal): the visit mask must be a superset of the children whose
// cell contains any accepted hit. Slab min/max against the explicit cell
// boxes gives exactly that; axes where 0 * inf produced NaN are treated as
// unconstrained (the conservative reading of scalar intersect_aabb's
// "NaN fails every ordered comparison" behavior). Extra visits cost time but
// cannot change the closest hit: hit distances come from the one shared
// Möller–Trumbore body and the argmin keeps strict `<` everywhere.

#include <cassert>
#include <cstdint>
#include <limits>

#include "geom/intersect.hpp"
#include "geom/ray.hpp"
#include "kdtree/leaf_blocks.hpp"
#include "kdtree/wide_tree.hpp"

namespace kdtune::wide_detail {

/// Raw-pointer view of a WideKdTree + its source compact tree, hoisted once
/// per query batch so the hot loop carries no shared_ptr or vector
/// indirections.
template <int W>
struct WideTreeView {
  const WideNode<W>* nodes;
  std::size_t node_count;
  const CompactNode* cnodes;  ///< source compact nodes (leaf refs point here)
  const Triangle* tris;
  const float* soa;
  const std::uint32_t* leaf_tris;
  AABB bounds;
};

/// Prefetches everything a *deferred* child ref will touch when it is popped
/// again: every cache line of a wide node (they span 2 (W=4) or 4 (W=8)
/// lines), or a leaf's triangle block. Deferred children surface only after
/// the nearer subtrees finish — ample time to hide the misses, and on the
/// single serving core latency is the scarce resource, not bandwidth. The
/// immediate-descend path deliberately issues at most one line (see the
/// loop): its loads start a few instructions later anyway, so extra prefetch
/// instructions there are pure front-end overhead.
template <int W>
inline void prefetch_deferred(const WideTreeView<W>& view,
                              std::int32_t ref) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  if (ref >= 0) {
    const char* p = reinterpret_cast<const char*>(view.nodes + ref);
    for (std::size_t off = 0; off < sizeof(WideNode<W>); off += 64) {
      __builtin_prefetch(p + off);
    }
  } else {
    // The 8-byte leaf header is loaded outright (the compact-node array is
    // small and hot) so the triangle data it points at — the actual
    // latency — can be requested now.
    const CompactNode c = view.cnodes[~ref];
    const std::uint32_t count = c.prim_count();
    if (count == 1) {
      __builtin_prefetch(view.tris + c.prim);
    } else if (count > 1) {
      const char* p = reinterpret_cast<const char*>(view.soa + 9ull * c.prim);
      const std::size_t bytes =
          count < 6 ? count * 9ull * sizeof(float) : 256;
      for (std::size_t off = 0; off < bytes; off += 64) {
        __builtin_prefetch(p + off);
      }
      __builtin_prefetch(view.leaf_tris + c.prim);
    }
  }
#else
  (void)view;
  (void)ref;
#endif
}

template <int W>
inline void prefetch_near(const WideTreeView<W>& view,
                          std::int32_t ref) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(ref >= 0 ? static_cast<const void*>(view.nodes + ref)
                              : static_cast<const void*>(view.cnodes + ~ref));
#else
  (void)view;
  (void)ref;
#endif
}

inline int lowest_set_lane(std::uint32_t mask) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_ctz(mask);
#else
  int i = 0;
  while ((mask & 1u) == 0u) {
    mask >>= 1;
    ++i;
  }
  return i;
#endif
}

/// The traversal loop. Kernel must provide
///   explicit Kernel(const Ray&);
///   uint32_t visit(const WideNode<W>&, float bound, float* tnear) const;
/// where the returned mask has bit i set iff child lane i's slab interval
/// [tn, tf] satisfies tn <= tf && tn < bound (tn written to tnear[i]).
///
/// Shape of the loop: the nearest surviving child stays in registers and is
/// descended into immediately — only the farther children round-trip through
/// the stack. Combined with the single-child fast path this removes a stack
/// push+pop (and its sort participation) from the overwhelmingly common
/// straight-line descent, and the prefetch of the next node overlaps its
/// cache miss with the current node's bookkeeping — the wide nodes are an
/// order of magnitude larger than the 8-byte binary nodes, so they miss L2
/// where the compact tree does not.
template <bool kAnyHit, class Kernel, int W>
inline Hit wide_traverse(const WideTreeView<W>& view, const Ray& ray) {
  Hit best;
  float t_enter, t_exit;
  if (view.node_count == 0 || !intersect_aabb(ray, view.bounds, t_enter, t_exit)) {
    return best;
  }
  (void)t_exit;

  const Kernel kernel(ray);
  float ray_t_max = ray.t_max;

  struct Entry {
    std::int32_t ref;  ///< >= 0: wide node index; < 0: compact leaf ~ref
    float t_near;      ///< slab entry distance of the child's cell
  };
  // Generous bound: a wide tree is at most ceil(64 / log2 W) levels deep
  // (the binary builders clamp at depth 64) and each level defers at most
  // W - 1 entries.
  constexpr int kStackSize = 256;
  Entry stack[kStackSize];
  int sp = 0;

  float tnear[W];
  int lanes[W];
  std::int32_t ref = 0;  ///< node in hand; >= 0 wide node, < 0 compact leaf
  for (;;) {
    if (ref >= 0) {
      const WideNode<W>& node = view.nodes[ref];
      const float bound = kAnyHit ? ray.t_max : ray_t_max;
      std::uint32_t mask = kernel.visit(node, bound, tnear);
      // Dispatch on the raw mask value for the 0/1/2-survivor patterns that
      // dominate traversal. The point is not fewer instructions — it is that
      // inside each case the child lane is a compile-time constant, so the
      // next node's address depends only on a *predicted* branch (the
      // switch's indirect jump plus, for two survivors, one near/far
      // compare), both highly coherent across a ray batch. That lets the
      // CPU speculate straight into the next level's loads instead of
      // serializing on the movemask -> tzcnt -> child[lane] data chain —
      // the same speculation that makes the binary tree's 2-way branch
      // cheap per level. Three or more survivors (rare) fall through to the
      // generic extract/sort path below.
      //
      // Tie-breaking in KDTUNE_WIDE_CASE2 (strict far < near compare, lower
      // lane wins ties) only affects visit order between cells with equal
      // entry distance; the closest-hit t is an argmin over every surviving
      // cell, so results stay bit-identical.
#define KDTUNE_WIDE_CASE1(I)   \
  case (1u << (I)):            \
    ref = node.child[(I)];     \
    prefetch_near(view, ref);  \
    continue;
#define KDTUNE_WIDE_CASE2(I, J)                          \
  case (1u << (I)) | (1u << (J)):                        \
    assert(sp < kStackSize &&                            \
           "wide traversal stack overflow");             \
    if (sp < kStackSize) {                               \
      if (tnear[(J)] < tnear[(I)]) {                     \
        stack[sp++] = {node.child[(I)], tnear[(I)]};     \
        prefetch_deferred(view, node.child[(I)]);        \
        ref = node.child[(J)];                           \
      } else {                                           \
        stack[sp++] = {node.child[(J)], tnear[(J)]};     \
        prefetch_deferred(view, node.child[(J)]);        \
        ref = node.child[(I)];                           \
      }                                                  \
    } else {                                             \
      ref = node.child[(I)];                             \
    }                                                    \
    prefetch_near(view, ref);                            \
    continue;
      if constexpr (W == 4) {
        switch (mask) {
          case 0:
            goto next_from_stack;
          KDTUNE_WIDE_CASE1(0)
          KDTUNE_WIDE_CASE1(1)
          KDTUNE_WIDE_CASE1(2)
          KDTUNE_WIDE_CASE1(3)
          KDTUNE_WIDE_CASE2(0, 1)
          KDTUNE_WIDE_CASE2(0, 2)
          KDTUNE_WIDE_CASE2(0, 3)
          KDTUNE_WIDE_CASE2(1, 2)
          KDTUNE_WIDE_CASE2(1, 3)
          KDTUNE_WIDE_CASE2(2, 3)
          default:
            break;
        }
      } else {
        switch (mask) {
          case 0:
            goto next_from_stack;
          KDTUNE_WIDE_CASE1(0)
          KDTUNE_WIDE_CASE1(1)
          KDTUNE_WIDE_CASE1(2)
          KDTUNE_WIDE_CASE1(3)
          KDTUNE_WIDE_CASE1(4)
          KDTUNE_WIDE_CASE1(5)
          KDTUNE_WIDE_CASE1(6)
          KDTUNE_WIDE_CASE1(7)
          KDTUNE_WIDE_CASE2(0, 1)
          KDTUNE_WIDE_CASE2(0, 2)
          KDTUNE_WIDE_CASE2(0, 3)
          KDTUNE_WIDE_CASE2(0, 4)
          KDTUNE_WIDE_CASE2(0, 5)
          KDTUNE_WIDE_CASE2(0, 6)
          KDTUNE_WIDE_CASE2(0, 7)
          KDTUNE_WIDE_CASE2(1, 2)
          KDTUNE_WIDE_CASE2(1, 3)
          KDTUNE_WIDE_CASE2(1, 4)
          KDTUNE_WIDE_CASE2(1, 5)
          KDTUNE_WIDE_CASE2(1, 6)
          KDTUNE_WIDE_CASE2(1, 7)
          KDTUNE_WIDE_CASE2(2, 3)
          KDTUNE_WIDE_CASE2(2, 4)
          KDTUNE_WIDE_CASE2(2, 5)
          KDTUNE_WIDE_CASE2(2, 6)
          KDTUNE_WIDE_CASE2(2, 7)
          KDTUNE_WIDE_CASE2(3, 4)
          KDTUNE_WIDE_CASE2(3, 5)
          KDTUNE_WIDE_CASE2(3, 6)
          KDTUNE_WIDE_CASE2(3, 7)
          KDTUNE_WIDE_CASE2(4, 5)
          KDTUNE_WIDE_CASE2(4, 6)
          KDTUNE_WIDE_CASE2(4, 7)
          KDTUNE_WIDE_CASE2(5, 6)
          KDTUNE_WIDE_CASE2(5, 7)
          KDTUNE_WIDE_CASE2(6, 7)
          default:
            break;
        }
      }
#undef KDTUNE_WIDE_CASE1
#undef KDTUNE_WIDE_CASE2
      {
        int n = 0;
        while (mask != 0) {
          lanes[n++] = lowest_set_lane(mask);
          mask &= mask - 1;
        }
        // Insertion sort, descending by entry distance (W is 4 or 8 — a
        // sort network would buy nothing over this).
        for (int a = 1; a < n; ++a) {
          const int lane = lanes[a];
          const float t = tnear[lane];
          int b = a - 1;
          while (b >= 0 && tnear[lanes[b]] < t) {
            lanes[b + 1] = lanes[b];
            --b;
          }
          lanes[b + 1] = lane;
        }
        // Defer all but the nearest; keep descending with the nearest.
        for (int a = 0; a + 1 < n; ++a) {
          assert(sp < kStackSize && "wide traversal stack overflow");
          if (sp < kStackSize) {
            stack[sp++] = {node.child[lanes[a]], tnear[lanes[a]]};
            prefetch_deferred(view, node.child[lanes[a]]);
          }
        }
        ref = node.child[lanes[n - 1]];
        prefetch_near(view, ref);
        continue;
      }
    } else {
      if (leaf_detail::intersect_leaf_blocks<kAnyHit>(
              view.cnodes[~ref], ray, view.tris, view.soa, view.leaf_tris,
              ray_t_max, best)) {
        return best;  // any-hit: done on the first hit
      }
    }

    // Pop the next deferred cell. Every hit inside a cell has t >= t_near,
    // and acceptance is strict t < ray_t_max — a cell entered at or beyond
    // the current best cannot improve it.
  next_from_stack:
    for (;;) {
      if (sp == 0) return best;
      const Entry e = stack[--sp];
      if (kAnyHit || e.t_near < ray_t_max) {
        ref = e.ref;
        break;
      }
    }
  }
}

/// Portable slab kernel — the semantic reference for every vector kernel and
/// the fallback on hosts (or builds) without SIMD support.
template <int W>
struct ScalarSlabKernel {
  float origin[3];
  float inv[3];
  float t_min;

  explicit ScalarSlabKernel(const Ray& ray) noexcept
      : origin{ray.origin.x, ray.origin.y, ray.origin.z},
        inv{ray.inv_dir.x, ray.inv_dir.y, ray.inv_dir.z},
        t_min(ray.t_min) {}

  std::uint32_t visit(const WideNode<W>& node, float bound,
                      float* tnear) const noexcept {
    std::uint32_t mask = 0;
    for (std::uint32_t i = 0; i < node.count; ++i) {
      float tn = t_min;
      float tf = std::numeric_limits<float>::infinity();
      for (int a = 0; a < 3; ++a) {
        const float t0 = (node.lo[a][i] - origin[a]) * inv[a];
        const float t1 = (node.hi[a][i] - origin[a]) * inv[a];
        // 0 * inf (axis-parallel ray, origin on a slab plane): leave the
        // axis unconstrained, matching the vector kernels' unordered-compare
        // blend to (-inf, +inf).
        if (std::isnan(t0) || std::isnan(t1)) continue;
        const float near = t0 < t1 ? t0 : t1;
        const float far = t0 < t1 ? t1 : t0;
        if (near > tn) tn = near;
        if (far < tf) tf = far;
      }
      if (tn <= tf && tn < bound) {
        mask |= 1u << i;
        tnear[i] = tn;
      }
    }
    return mask;
  }
};

// Kernel entry points, one pair per (ISA, width) the binary may contain.
// Defined in wide_kernels_portable.cpp / wide_kernels_avx2.cpp; WideKdTree
// dispatches among the ones present via simd_dispatch.
Hit closest_hit_scalar(const WideTreeView<4>& view, const Ray& ray);
Hit closest_hit_scalar(const WideTreeView<8>& view, const Ray& ray);
Hit any_hit_scalar(const WideTreeView<4>& view, const Ray& ray);
Hit any_hit_scalar(const WideTreeView<8>& view, const Ray& ray);

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__) || \
    defined(_M_IX86)
Hit closest_hit_sse(const WideTreeView<4>& view, const Ray& ray);
Hit closest_hit_sse(const WideTreeView<8>& view, const Ray& ray);
Hit any_hit_sse(const WideTreeView<4>& view, const Ray& ray);
Hit any_hit_sse(const WideTreeView<8>& view, const Ray& ray);
// Present only when the AVX2 TU is compiled (KDTUNE_HAVE_AVX2_TU).
Hit closest_hit_avx2(const WideTreeView<8>& view, const Ray& ray);
Hit any_hit_avx2(const WideTreeView<8>& view, const Ray& ray);
#endif
#if defined(__ARM_NEON) || defined(__ARM_NEON__)
Hit closest_hit_neon(const WideTreeView<4>& view, const Ray& ray);
Hit closest_hit_neon(const WideTreeView<8>& view, const Ray& ray);
Hit any_hit_neon(const WideTreeView<4>& view, const Ray& ray);
Hit any_hit_neon(const WideTreeView<8>& view, const Ray& ray);
#endif

}  // namespace kdtune::wide_detail
