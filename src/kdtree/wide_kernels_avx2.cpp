// AVX2 kernel for 8-wide nodes: all eight child slabs of a node in one
// 256-bit lane set. This TU is compiled with -mavx2 only when both the
// target is x86 and the compiler accepts the flag (see
// src/kdtree/CMakeLists.txt, which also defines KDTUNE_HAVE_AVX2_TU so the
// dispatcher knows the symbols exist); runtime dispatch guarantees the
// functions are never called on CPUs without AVX2.
//
// Same conservative slab semantics as the scalar/SSE kernels, and — on
// purpose — no FMA: (lo - o) * inv must round exactly like the baseline
// kernels so a tree answers identically whichever kernel serves it.

#if defined(__AVX2__)

#include <immintrin.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "kdtree/wide_traverse.hpp"

namespace kdtune::wide_detail {

namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

/// Per-ray near/far slab-plane selection (the Embree-style formulation): the
/// sign of inv_dir decides once per ray whether lo or hi is the entry plane
/// on each axis, so the per-node work is one sub+mul+fold per plane with no
/// min/max swap and no unordered-compare blend. x86 maxps/minps return the
/// SECOND operand when the first is NaN, so folding with the freshly
/// computed distance as the first operand silently drops 0 * inf lanes —
/// exactly the conservative "axis unconstrained" reading the scalar
/// reference implements with an explicit isnan test. A kernel may therefore
/// produce a *tighter* visit mask than the scalar reference in those
/// measure-zero cases; both are conservative supersets of the children
/// containing true hits, which is what keeps final hits bit-identical.
struct Avx2Kernel8 {
  __m256 o[3];
  __m256 inv[3];
  __m256 tmin;
  int near_off[3];  ///< float offset of the entry plane row in the node
  int far_off[3];   ///< float offset of the exit plane row

  explicit Avx2Kernel8(const Ray& ray) noexcept {
    const float os[3] = {ray.origin.x, ray.origin.y, ray.origin.z};
    const float is[3] = {ray.inv_dir.x, ray.inv_dir.y, ray.inv_dir.z};
    for (int a = 0; a < 3; ++a) {
      o[a] = _mm256_set1_ps(os[a]);
      inv[a] = _mm256_set1_ps(is[a]);
      // lo[a] row sits at float offset a*8, hi[a] at 24 + a*8.
      const bool toward_hi = !std::signbit(is[a]);
      near_off[a] = toward_hi ? a * 8 : 24 + a * 8;
      far_off[a] = toward_hi ? 24 + a * 8 : a * 8;
    }
    tmin = _mm256_set1_ps(ray.t_min);
  }

  std::uint32_t visit(const WideNode<8>& node, float bound,
                      float* tnear) const noexcept {
    const float* const base = node.lo[0];
    __m256 tn = tmin;
    __m256 tf = _mm256_set1_ps(kInf);
    for (int a = 0; a < 3; ++a) {
      const __m256 t0 = _mm256_mul_ps(
          _mm256_sub_ps(_mm256_loadu_ps(base + near_off[a]), o[a]), inv[a]);
      const __m256 t1 = _mm256_mul_ps(
          _mm256_sub_ps(_mm256_loadu_ps(base + far_off[a]), o[a]), inv[a]);
      tn = _mm256_max_ps(t0, tn);  // NaN t0 keeps tn: axis unconstrained
      tf = _mm256_min_ps(t1, tf);
    }
    const __m256 ok =
        _mm256_and_ps(_mm256_cmp_ps(tn, tf, _CMP_LE_OQ),
                      _mm256_cmp_ps(tn, _mm256_set1_ps(bound), _CMP_LT_OQ));
    _mm256_storeu_ps(tnear, tn);
    const auto mask = static_cast<std::uint32_t>(_mm256_movemask_ps(ok));
    return mask & ((1u << node.count) - 1u);
  }
};

}  // namespace

Hit closest_hit_avx2(const WideTreeView<8>& view, const Ray& ray) {
  return wide_traverse<false, Avx2Kernel8>(view, ray);
}
Hit any_hit_avx2(const WideTreeView<8>& view, const Ray& ray) {
  return wide_traverse<true, Avx2Kernel8>(view, ray);
}

}  // namespace kdtune::wide_detail

#endif  // __AVX2__
