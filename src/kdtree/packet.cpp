#include "kdtree/packet.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "geom/intersect.hpp"

namespace kdtune {

namespace {

using Mask = std::uint64_t;

struct PacketState {
  float t_min[kMaxPacketSize];
  float t_max[kMaxPacketSize];
};

struct StackEntry {
  std::uint32_t node;
  Mask mask;
  PacketState state;
};

}  // namespace

void closest_hit_packet(const KdTree& tree, std::span<const Ray> rays,
                        std::span<Hit> hits) {
  const std::size_t n = rays.size();
  if (hits.size() != n) {
    throw std::invalid_argument("closest_hit_packet: rays/hits size mismatch");
  }
  if (n == 0) return;
  if (n > kMaxPacketSize) {
    throw std::invalid_argument("closest_hit_packet: packet too large");
  }

  const auto nodes = tree.nodes();
  const auto prim_indices = tree.prim_indices();
  const auto tris = tree.triangles();

  // Per-ray state that persists across the whole trace.
  float best_t[kMaxPacketSize];
  for (std::size_t i = 0; i < n; ++i) {
    hits[i] = Hit{};
    best_t[i] = rays[i].t_max;
  }

  // Clip every ray against the scene bounds; rays that miss leave the mask.
  PacketState root_state;
  Mask mask = 0;
  for (std::size_t i = 0; i < n; ++i) {
    float t0, t1;
    if (intersect_aabb(rays[i], tree.bounds(), t0, t1)) {
      root_state.t_min[i] = t0;
      root_state.t_max[i] = t1;
      mask |= Mask{1} << i;
    }
  }
  if (mask == 0 || nodes.empty()) return;

  std::vector<StackEntry> stack;
  stack.reserve(64);
  std::uint32_t current = tree.root();
  PacketState state = root_state;

  for (;;) {
    const KdNode& node = nodes[current];
    if (node.is_leaf()) {
      for (std::uint32_t k = 0; k < node.b; ++k) {
        const std::uint32_t tri = prim_indices[node.a + k];
        for (std::size_t i = 0; i < n; ++i) {
          if ((mask & (Mask{1} << i)) == 0) continue;
          Ray r = rays[i];
          r.t_max = best_t[i];
          float t, u, v;
          if (intersect(r, tris[tri], t, u, v)) {
            hits[i] = {t, tri, u, v};
            best_t[i] = t;
          }
        }
      }
      // Pop the next deferred far side, dropping rays that already found a
      // hit no farther than the deferred interval's start (their result is
      // final; the deferred subtree cannot beat it).
      for (;;) {
        if (stack.empty()) return;
        StackEntry entry = std::move(stack.back());
        stack.pop_back();
        Mask still = 0;
        for (std::size_t i = 0; i < n; ++i) {
          if ((entry.mask & (Mask{1} << i)) == 0) continue;
          if (hits[i].valid() && hits[i].t <= entry.state.t_min[i]) continue;
          still |= Mask{1} << i;
        }
        if (still != 0) {
          current = entry.node;
          mask = still;
          state = entry.state;
          break;
        }
      }
      continue;
    }

    const Axis axis = node.axis();
    Mask near_mask = 0, far_mask = 0;
    PacketState near_state = state, far_state = state;

    // Children by the *first* active ray's orientation; rays pointing the
    // other way swap roles individually below.
    for (std::size_t i = 0; i < n; ++i) {
      if ((mask & (Mask{1} << i)) == 0) continue;
      const Ray& ray = rays[i];
      const float origin = ray.origin[axis];
      const float t_split = (node.split - origin) * ray.inv_dir[axis];
      const bool below = origin < node.split ||
                         (origin == node.split && ray.dir[axis] <= 0.0f);

      // Per-ray classification mirrors the scalar traversal exactly.
      bool go_near = false, go_far = false;
      float near_t_max = state.t_max[i];
      float far_t_min = state.t_min[i];
      if (std::isnan(t_split)) {
        go_near = go_far = true;
      } else if (t_split > state.t_max[i] || t_split <= 0.0f) {
        go_near = true;
      } else if (t_split < state.t_min[i]) {
        go_far = true;
      } else {
        go_near = go_far = true;
        near_t_max = t_split;
        far_t_min = t_split;
      }

      // The two buckets are keyed by *physical* child: bucket "near_" is
      // child a, bucket "far_" is child b. A ray's own near child is a when
      // it starts below the plane, b otherwise.
      if (go_near) {
        if (below) {
          near_mask |= Mask{1} << i;
          near_state.t_max[i] = near_t_max;
        } else {
          far_mask |= Mask{1} << i;
          far_state.t_max[i] = near_t_max;
        }
      }
      if (go_far) {
        if (below) {
          far_mask |= Mask{1} << i;
          far_state.t_min[i] = far_t_min;
        } else {
          near_mask |= Mask{1} << i;
          near_state.t_min[i] = far_t_min;
        }
      }
    }

    // Bucket "near_" is physical child a, "far_" is child b. Descend into
    // whichever has rays; defer the other.
    if (near_mask != 0 && far_mask != 0) {
      stack.push_back({node.b, far_mask, far_state});
      current = node.a;
      mask = near_mask;
      state = near_state;
    } else if (near_mask != 0) {
      current = node.a;
      mask = near_mask;
      state = near_state;
    } else if (far_mask != 0) {
      current = node.b;
      mask = far_mask;
      state = far_state;
    } else {
      // No ray continues here: pop.
      for (;;) {
        if (stack.empty()) return;
        StackEntry entry = std::move(stack.back());
        stack.pop_back();
        Mask still = 0;
        for (std::size_t i = 0; i < n; ++i) {
          if ((entry.mask & (Mask{1} << i)) == 0) continue;
          if (hits[i].valid() && hits[i].t <= entry.state.t_min[i]) continue;
          still |= Mask{1} << i;
        }
        if (still != 0) {
          current = entry.node;
          mask = still;
          state = entry.state;
          break;
        }
      }
    }
  }
}

void closest_hit_packet_any(const KdTreeBase& tree, std::span<const Ray> rays,
                            std::span<Hit> hits) {
  if (const auto* eager = dynamic_cast<const KdTree*>(&tree)) {
    std::size_t offset = 0;
    while (offset < rays.size()) {
      const std::size_t chunk = std::min(kMaxPacketSize, rays.size() - offset);
      closest_hit_packet(*eager, rays.subspan(offset, chunk),
                         hits.subspan(offset, chunk));
      offset += chunk;
    }
    return;
  }
  for (std::size_t i = 0; i < rays.size(); ++i) {
    hits[i] = tree.closest_hit(rays[i]);
  }
}

}  // namespace kdtune
