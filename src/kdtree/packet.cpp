#include "kdtree/packet.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "geom/intersect.hpp"

namespace kdtune {

namespace {

using Mask = std::uint64_t;

struct PacketState {
  float t_min[kMaxPacketSize];
  float t_max[kMaxPacketSize];
};

struct StackEntry {
  std::uint32_t node;
  Mask mask;
  PacketState state;
};

/// Decoded node shared by the two layouts.
struct DecodedNode {
  bool leaf;
  Axis axis;
  float split;
  std::uint32_t left;
  std::uint32_t right;
};

/// Adapter over the classic 16-byte builder layout.
struct EagerView {
  std::span<const KdNode> nodes;
  std::span<const std::uint32_t> prim_indices;
  std::span<const Triangle> tris;
  std::uint32_t root_index;

  std::uint32_t root() const noexcept { return root_index; }

  DecodedNode decode(std::uint32_t idx) const noexcept {
    const KdNode& n = nodes[idx];
    if (n.is_leaf()) return {true, Axis::X, 0.0f, 0, 0};
    return {false, n.axis(), n.split, n.a, n.b};
  }

  void intersect_leaf(std::uint32_t idx, Ray& ray, Hit& best) const {
    const KdNode& n = nodes[idx];
    for (std::uint32_t k = 0; k < n.b; ++k) {
      const std::uint32_t tri = prim_indices[n.a + k];
      float t, u, v;
      if (intersect(ray, tris[tri], t, u, v)) {
        best = {t, tri, u, v};
        ray.t_max = t;
      }
    }
  }
};

/// Adapter over the 8-byte compact layout (implicit left child).
struct CompactView {
  const CompactKdTree* tree;
  std::span<const CompactNode> nodes;

  std::uint32_t root() const noexcept { return 0; }

  DecodedNode decode(std::uint32_t idx) const noexcept {
    const CompactNode& n = nodes[idx];
    if (n.is_leaf()) return {true, Axis::X, 0.0f, 0, 0};
    return {false, n.axis(), n.split, idx + 1, n.right_child()};
  }

  void intersect_leaf(std::uint32_t idx, Ray& ray, Hit& best) const {
    tree->intersect_leaf(nodes[idx], ray, best);
  }
};

/// The masked packet traversal, shared by both layouts. Per-ray results are
/// bit-identical to the scalar traversal: the same near/far decisions run
/// per ray, and each ray tests its leaves' triangles in the same order with
/// its own shrinking interval.
template <typename View>
void packet_traverse(const View& view, const AABB& bounds,
                     std::span<const Ray> rays, std::span<Hit> hits) {
  const std::size_t n = rays.size();
  if (hits.size() != n) {
    throw std::invalid_argument("closest_hit_packet: rays/hits size mismatch");
  }
  if (n == 0) return;
  if (n > kMaxPacketSize) {
    throw std::invalid_argument("closest_hit_packet: packet too large");
  }

  // Per-ray state that persists across the whole trace.
  float best_t[kMaxPacketSize];
  for (std::size_t i = 0; i < n; ++i) {
    hits[i] = Hit{};
    best_t[i] = rays[i].t_max;
  }

  // Clip every ray against the scene bounds; rays that miss leave the mask.
  PacketState root_state;
  Mask mask = 0;
  for (std::size_t i = 0; i < n; ++i) {
    float t0, t1;
    if (intersect_aabb(rays[i], bounds, t0, t1)) {
      root_state.t_min[i] = t0;
      root_state.t_max[i] = t1;
      mask |= Mask{1} << i;
    }
  }
  if (mask == 0) return;

  std::vector<StackEntry> stack;
  stack.reserve(64);
  std::uint32_t current = view.root();
  PacketState state = root_state;

  // Pops the next deferred far side, dropping rays that already found a hit
  // no farther than the deferred interval's start (their result is final;
  // the deferred subtree cannot beat it). Returns false when exhausted.
  const auto pop = [&]() -> bool {
    for (;;) {
      if (stack.empty()) return false;
      StackEntry entry = std::move(stack.back());
      stack.pop_back();
      Mask still = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if ((entry.mask & (Mask{1} << i)) == 0) continue;
        if (hits[i].valid() && hits[i].t <= entry.state.t_min[i]) continue;
        still |= Mask{1} << i;
      }
      if (still != 0) {
        current = entry.node;
        mask = still;
        state = entry.state;
        return true;
      }
    }
  };

  for (;;) {
    const DecodedNode node = view.decode(current);
    if (node.leaf) {
      for (std::size_t i = 0; i < n; ++i) {
        if ((mask & (Mask{1} << i)) == 0) continue;
        Ray r = rays[i];
        r.t_max = best_t[i];
        view.intersect_leaf(current, r, hits[i]);
        best_t[i] = r.t_max;
      }
      if (!pop()) return;
      continue;
    }

    const Axis axis = node.axis;
    Mask near_mask = 0, far_mask = 0;
    PacketState near_state = state, far_state = state;

    for (std::size_t i = 0; i < n; ++i) {
      if ((mask & (Mask{1} << i)) == 0) continue;
      const Ray& ray = rays[i];
      const float origin = ray.origin[axis];
      const float t_split = (node.split - origin) * ray.inv_dir[axis];
      const bool below = origin < node.split ||
                         (origin == node.split && ray.dir[axis] <= 0.0f);

      // Per-ray classification mirrors the scalar traversal exactly.
      bool go_near = false, go_far = false;
      float near_t_max = state.t_max[i];
      float far_t_min = state.t_min[i];
      if (std::isnan(t_split)) {
        go_near = go_far = true;
      } else if (t_split > state.t_max[i] || t_split <= 0.0f) {
        go_near = true;
      } else if (t_split < state.t_min[i]) {
        go_far = true;
      } else {
        go_near = go_far = true;
        near_t_max = t_split;
        far_t_min = t_split;
      }

      // The two buckets are keyed by *physical* child: bucket "near_" is the
      // left child, bucket "far_" is the right child. A ray's own near child
      // is the left one when it starts below the plane, right otherwise.
      if (go_near) {
        if (below) {
          near_mask |= Mask{1} << i;
          near_state.t_max[i] = near_t_max;
        } else {
          far_mask |= Mask{1} << i;
          far_state.t_max[i] = near_t_max;
        }
      }
      if (go_far) {
        if (below) {
          far_mask |= Mask{1} << i;
          far_state.t_min[i] = far_t_min;
        } else {
          near_mask |= Mask{1} << i;
          near_state.t_min[i] = far_t_min;
        }
      }
    }

    // Descend into whichever physical child has rays; defer the other.
    if (near_mask != 0 && far_mask != 0) {
      stack.push_back({node.right, far_mask, far_state});
      current = node.left;
      mask = near_mask;
      state = near_state;
    } else if (near_mask != 0) {
      current = node.left;
      mask = near_mask;
      state = near_state;
    } else if (far_mask != 0) {
      current = node.right;
      mask = far_mask;
      state = far_state;
    } else {
      if (!pop()) return;
    }
  }
}

}  // namespace

void closest_hit_packet(const KdTree& tree, std::span<const Ray> rays,
                        std::span<Hit> hits) {
  if (tree.nodes().empty()) {
    for (std::size_t i = 0; i < hits.size(); ++i) hits[i] = Hit{};
    return;
  }
  const EagerView view{tree.nodes(), tree.prim_indices(), tree.triangles(),
                       tree.root()};
  packet_traverse(view, tree.bounds(), rays, hits);
}

void closest_hit_packet(const CompactKdTree& tree, std::span<const Ray> rays,
                        std::span<Hit> hits) {
  const CompactView view{&tree, tree.nodes()};
  packet_traverse(view, tree.bounds(), rays, hits);
}

void closest_hit_packet(const WideTreeBase& tree, std::span<const Ray> rays,
                        std::span<Hit> hits) {
  if (rays.size() != hits.size()) {
    throw std::invalid_argument("closest_hit_packet: rays/hits size mismatch");
  }
  // The wide kernels vectorize across a node's child slabs per ray; packet
  // masking would fight that for no gain. Per-ray dispatch stays
  // bit-identical to every other backend.
  for (std::size_t i = 0; i < rays.size(); ++i) {
    hits[i] = tree.closest_hit(rays[i]);
  }
}

void closest_hit_packet_any(const KdTreeBase& tree, std::span<const Ray> rays,
                            std::span<Hit> hits) {
  if (const auto* wide = dynamic_cast<const WideTreeBase*>(&tree)) {
    closest_hit_packet(*wide, rays, hits);
    return;
  }
  const auto* eager = dynamic_cast<const KdTree*>(&tree);
  const auto* compact = dynamic_cast<const CompactKdTree*>(&tree);
  if (eager != nullptr || compact != nullptr) {
    std::size_t offset = 0;
    while (offset < rays.size()) {
      const std::size_t chunk = std::min(kMaxPacketSize, rays.size() - offset);
      if (eager != nullptr) {
        closest_hit_packet(*eager, rays.subspan(offset, chunk),
                           hits.subspan(offset, chunk));
      } else {
        closest_hit_packet(*compact, rays.subspan(offset, chunk),
                           hits.subspan(offset, chunk));
      }
      offset += chunk;
    }
    return;
  }
  for (std::size_t i = 0; i < rays.size(); ++i) {
    hits[i] = tree.closest_hit(rays[i]);
  }
}

}  // namespace kdtune
