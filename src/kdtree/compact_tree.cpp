#include "kdtree/compact_tree.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>
#include <stdexcept>
#include <utility>

#include "geom/closest_point.hpp"
#include "geom/intersect.hpp"
#include "kdtree/knn.hpp"
#include "kdtree/leaf_blocks.hpp"

namespace kdtune {

namespace {

/// Visits every triangle of a leaf: inlined single triangles load from the
/// triangle array; larger leaves stream their SoA block. `fn(a, e1, e2, id)`
/// returns true to stop early.
template <typename Fn>
inline void for_each_leaf_tri(const CompactNode& node,
                              std::span<const Triangle> triangles,
                              const float* soa, const std::uint32_t* leaf_tris,
                              Fn&& fn) {
  const std::uint32_t count = node.prim_count();
  if (count == 1) {
    const Triangle& tri = triangles[node.prim];
    fn(tri.a, tri.b - tri.a, tri.c - tri.a, node.prim);
    return;
  }
  const float* blk = soa + 9ull * node.prim;
  const std::uint32_t* ids = leaf_tris + node.prim;
  for (std::uint32_t k = 0; k < count; ++k) {
    const Vec3 a{blk[k], blk[count + k], blk[2ull * count + k]};
    const Vec3 e1{blk[3ull * count + k], blk[4ull * count + k],
                  blk[5ull * count + k]};
    const Vec3 e2{blk[6ull * count + k], blk[7ull * count + k],
                  blk[8ull * count + k]};
    if (fn(a, e1, e2, ids[k])) return;
  }
}

}  // namespace

CompactKdTree::CompactKdTree(const KdTree& source)
    : triangles_(source.triangles().begin(), source.triangles().end()),
      bounds_(source.bounds()) {
  const auto src_nodes = source.nodes();
  const auto prim_indices = source.prim_indices();

  if (src_nodes.empty()) {
    nodes_.push_back(CompactNode::make_leaf(0, 0));
    build_blocks_and_validate();
    return;
  }
  if (src_nodes.size() > CompactNode::kMaxPayload) {
    throw std::invalid_argument(
        "CompactKdTree: source exceeds the 30-bit node budget");
  }

  nodes_.reserve(src_nodes.size());
  leaf_tris_.reserve(prim_indices.size());

  // Iterative preorder emission, left subtree first, so the left child always
  // lands at parent + 1. Right children are patched in when they are emitted.
  constexpr std::uint32_t kNoPatch = 0xFFFFFFFFu;
  struct Item {
    std::uint32_t src;    ///< node index in the source tree
    std::uint32_t patch;  ///< compact interior whose right-child this is
  };
  std::vector<Item> stack{{source.root(), kNoPatch}};
  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    const KdNode& n = src_nodes[item.src];
    const auto pos = static_cast<std::uint32_t>(nodes_.size());
    if (item.patch != kNoPatch) nodes_[item.patch].meta |= pos << 2;

    if (n.is_leaf()) {
      if (n.b == 1) {
        nodes_.push_back(CompactNode::make_leaf(prim_indices[n.a], 1));
      } else {
        const auto base = static_cast<std::uint32_t>(leaf_tris_.size());
        for (std::uint32_t k = 0; k < n.b; ++k) {
          leaf_tris_.push_back(prim_indices[n.a + k]);
        }
        nodes_.push_back(CompactNode::make_leaf(base, n.b));
      }
    } else if (n.is_interior()) {
      nodes_.push_back(CompactNode::make_interior(n.axis(), n.split, 0));
      stack.push_back({n.b, pos});      // right: emitted after the whole
      stack.push_back({n.a, kNoPatch}); // left subtree, patched back in
    } else {
      throw std::invalid_argument(
          "CompactKdTree: source contains deferred nodes (expand first)");
    }
  }
  build_blocks_and_validate();
}

CompactKdTree::CompactKdTree(std::vector<Triangle> triangles,
                             std::vector<CompactNode> nodes,
                             std::vector<std::uint32_t> leaf_tris, AABB bounds)
    : triangles_(std::move(triangles)),
      nodes_(std::move(nodes)),
      leaf_tris_(std::move(leaf_tris)),
      bounds_(bounds) {
  build_blocks_and_validate();
}

void CompactKdTree::build_blocks_and_validate() {
  if (nodes_.empty()) {
    throw std::runtime_error("compact tree corrupt: no nodes");
  }
  if (nodes_.size() - 1 > CompactNode::kMaxPayload) {
    throw std::runtime_error("compact tree corrupt: too many nodes");
  }

  soa_.assign(9ull * leaf_tris_.size(), 0.0f);
  std::size_t running = 0;  // next unclaimed leaf-block slot
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const CompactNode& n = nodes_[i];
    if (!n.is_leaf()) {
      // DFS order: the left subtree is non-empty, so the right child is at
      // least two slots ahead. This also guarantees forward progress when
      // traversing untrusted (deserialized) trees.
      const std::uint32_t right = n.right_child();
      if (right < i + 2 || right >= nodes_.size()) {
        throw std::runtime_error("compact tree corrupt: right child");
      }
      continue;
    }
    const std::uint32_t count = n.prim_count();
    if (count == 0) continue;
    if (count == 1) {
      if (n.prim >= triangles_.size()) {
        throw std::runtime_error("compact tree corrupt: inlined triangle id");
      }
      continue;
    }
    if (n.prim != running || running + count > leaf_tris_.size()) {
      throw std::runtime_error("compact tree corrupt: leaf block range");
    }
    float* blk = soa_.data() + 9ull * running;
    for (std::uint32_t k = 0; k < count; ++k) {
      const std::uint32_t id = leaf_tris_[running + k];
      if (id >= triangles_.size()) {
        throw std::runtime_error("compact tree corrupt: leaf triangle id");
      }
      const Triangle& tri = triangles_[id];
      const Vec3 e1 = tri.b - tri.a;
      const Vec3 e2 = tri.c - tri.a;
      blk[k] = tri.a.x;
      blk[count + k] = tri.a.y;
      blk[2ull * count + k] = tri.a.z;
      blk[3ull * count + k] = e1.x;
      blk[4ull * count + k] = e1.y;
      blk[5ull * count + k] = e1.z;
      blk[6ull * count + k] = e2.x;
      blk[7ull * count + k] = e2.y;
      blk[8ull * count + k] = e2.z;
    }
    running += count;
  }
  if (running != leaf_tris_.size()) {
    throw std::runtime_error("compact tree corrupt: dangling leaf block data");
  }
}

void CompactKdTree::intersect_leaf(const CompactNode& node, Ray& ray,
                                   Hit& best) const {
  for_each_leaf_tri(
      node, triangles_, soa_.data(), leaf_tris_.data(),
      [&](const Vec3& a, const Vec3& e1, const Vec3& e2, std::uint32_t id) {
        float t, u, v;
        if (intersect_edges(ray, a, e1, e2, t, u, v)) {
          best = {t, id, u, v};
          ray.t_max = t;
        }
        return false;
      });
}

template <CompactKdTree::HitQuery M, bool kCounted>
Hit CompactKdTree::hit_core(const Ray& ray, TraversalCounters* counters) const {
  Hit best;
  float t_min, t_max;
  if (!intersect_aabb(ray, bounds_, t_min, t_max)) return best;

  // Hoisted raw pointers keep the hot loop free of member indirections.
  const CompactNode* const nodes = nodes_.data();
  const float* const soa = soa_.data();
  const std::uint32_t* const leaf_tris = leaf_tris_.data();
  const Triangle* const tris = triangles_.data();

  // Shrinking interval for the closest-hit query, kept in a register
  // (identical semantics to shrinking a Ray copy's t_max).
  float ray_t_max = ray.t_max;
  using traversal_detail::StackEntry;
  StackEntry stack[traversal_detail::kMaxStackDepth];
  int sp = 0;
  std::uint32_t current = 0;

  for (;;) {
    const CompactNode node = nodes[current];
    if (node.is_leaf()) {
      const std::uint32_t count = node.prim_count();
      if constexpr (kCounted) {
        ++counters->leaves_visited;
        counters->triangles_tested += count;
      }
      // Leaf blocks are shared with the wide backends: the full leaf test
      // (inlined singles, tiny sequential blocks, chunked branchless pass)
      // lives in leaf_blocks.hpp so every layout funnels through one body.
      if (leaf_detail::intersect_leaf_blocks<M == HitQuery::kAny>(
              node, ray, tris, soa, leaf_tris, ray_t_max, best)) {
        return best;  // any-hit: first hit terminates the query
      }
      if constexpr (M == HitQuery::kClosest) {
        // A hit inside this leaf's interval cannot be beaten by nodes
        // further along the ray.
        if (best.valid() && best.t <= t_max) return best;
      }
      if (sp == 0) return best;
      --sp;
      current = stack[sp].node;
      t_min = stack[sp].t_min;
      t_max = stack[sp].t_max;
      continue;
    }

    if constexpr (kCounted) ++counters->interior_visited;
    const Axis axis = node.axis();
    const float origin = ray.origin[axis];
    const float t_split = (node.split - origin) * ray.inv_dir[axis];

    // Same near/far rules as KdTree::traverse; left child is implicit.
    std::uint32_t near = current + 1;
    std::uint32_t far = node.right_child();
    const bool below =
        origin < node.split || (origin == node.split && ray.dir[axis] <= 0.0f);
    if (!below) std::swap(near, far);

    // NaN (ray in the split plane) fails every ordered comparison, so the
    // common near-only / far-only cases never pay for the NaN test — it is
    // only reached (and checked) on the visit-both path. Decisions are
    // identical to checking NaN first, as KdTree::traverse does.
    if (t_split > t_max || t_split <= 0.0f) {
      current = near;
    } else if (t_split < t_min) {
      current = far;
    } else if (std::isnan(t_split)) {
      assert(sp < traversal_detail::kMaxStackDepth &&
             "compact kd traversal stack overflow (depth clamp violated)");
      if (sp < traversal_detail::kMaxStackDepth) {
        stack[sp++] = {far, t_min, t_max};
      }
      current = near;
    } else {
      assert(sp < traversal_detail::kMaxStackDepth &&
             "compact kd traversal stack overflow (depth clamp violated)");
      if (sp < traversal_detail::kMaxStackDepth) {
        __builtin_prefetch(nodes + far);  // next miss after the matching pop
        stack[sp++] = {far, t_split, t_max};
      }
      current = near;
      t_max = t_split;
    }
  }
}

Hit CompactKdTree::closest_hit(const Ray& ray) const {
  return hit_core<HitQuery::kClosest, false>(ray, nullptr);
}

Hit CompactKdTree::closest_hit_counted(const Ray& ray,
                                       TraversalCounters& counters) const {
  return hit_core<HitQuery::kClosest, true>(ray, &counters);
}

bool CompactKdTree::any_hit(const Ray& ray) const {
  return hit_core<HitQuery::kAny, false>(ray, nullptr).valid();
}

void CompactKdTree::query_range(const AABB& box,
                                std::vector<std::uint32_t>& out) const {
  const std::size_t start = out.size();
  if (nodes_.empty() || !bounds_.overlaps(box)) return;

  struct Frame {
    std::uint32_t node;
    AABB node_box;
  };
  std::vector<Frame> stack{{0, bounds_}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const CompactNode& node = nodes_[f.node];
    if (node.is_leaf()) {
      for_each_leaf_tri(
          node, triangles_, soa_.data(), leaf_tris_.data(),
          [&](const Vec3&, const Vec3&, const Vec3&, std::uint32_t id) {
            // Exact filter: the clipped geometry must reach into the box.
            if (box.overlaps(triangles_[id].bounds()) &&
                !clipped_bounds(triangles_[id], box).empty()) {
              out.push_back(id);
            }
            return false;
          });
      continue;
    }
    const auto [lbox, rbox] = f.node_box.split(node.axis(), node.split);
    if (box.overlaps(lbox)) stack.push_back({f.node + 1, lbox});
    if (box.overlaps(rbox)) stack.push_back({node.right_child(), rbox});
  }

  std::sort(out.begin() + start, out.end());
  out.erase(std::unique(out.begin() + start, out.end()), out.end());
}

void CompactKdTree::nearest_core(const Vec3& point,
                                 KnnCollector& collector) const {
  if (nodes_.empty()) return;

  struct Entry {
    float dist_sq;
    std::uint32_t node;
    AABB box;

    bool operator>(const Entry& o) const noexcept {
      return dist_sq > o.dist_sq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  const float root_dist = distance_squared(point, bounds_);
  if (root_dist > collector.bound()) return;  // radius seed prunes the root
  queue.push({root_dist, 0, bounds_});

  while (!queue.empty()) {
    const Entry entry = queue.top();
    queue.pop();
    // Strictly farther entries cannot contribute; entries at exactly the
    // bound still can (equal-distance, lower-id ties) — see knn.hpp.
    if (entry.dist_sq > collector.bound()) break;

    const CompactNode& node = nodes_[entry.node];
    if (node.is_leaf()) {
      for_each_leaf_tri(
          node, triangles_, soa_.data(), leaf_tris_.data(),
          [&](const Vec3&, const Vec3&, const Vec3&, std::uint32_t id) {
            const Vec3 cp = closest_point_on_triangle(point, triangles_[id]);
            collector.offer(id, cp, length_squared(point - cp));
            return false;
          });
      continue;
    }
    const auto [lbox, rbox] = entry.box.split(node.axis(), node.split);
    const float dl = distance_squared(point, lbox);
    const float dr = distance_squared(point, rbox);
    if (dl <= collector.bound()) queue.push({dl, entry.node + 1, lbox});
    if (dr <= collector.bound()) queue.push({dr, node.right_child(), rbox});
  }
}

NearestResult CompactKdTree::nearest(const Vec3& point) const {
  KnnCollector collector(1, std::numeric_limits<float>::infinity());
  nearest_core(point, collector);
  return collector.best();
}

void CompactKdTree::do_nearest_k(const Vec3& point, std::size_t k,
                                 std::vector<NearestResult>& out,
                                 float max_distance) const {
  KnnCollector collector(k, max_distance);
  nearest_core(point, collector);
  collector.take_sorted(out);
}

TreeStats CompactKdTree::stats() const {
  TreeStats s;
  if (nodes_.empty()) return s;

  struct Frame {
    std::uint32_t node;
    AABB box;
    std::size_t depth;
  };
  std::vector<Frame> stack{{0, bounds_, 1}};
  const double root_area = bounds_.surface_area();
  std::size_t nonempty_prims = 0;
  std::size_t nonempty_leaves = 0;

  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const CompactNode& node = nodes_[f.node];
    ++s.node_count;
    s.max_depth = std::max(s.max_depth, f.depth);
    const double p = root_area > 0.0 ? f.box.surface_area() / root_area : 0.0;

    if (node.is_leaf()) {
      const std::uint32_t count = node.prim_count();
      ++s.leaf_count;
      if (count == 0) ++s.empty_leaf_count;
      s.prim_refs += count;
      if (count > 0) {
        nonempty_prims += count;
        ++nonempty_leaves;
      }
      s.sah_cost += p * 17.0 * static_cast<double>(count);
      continue;
    }

    s.sah_cost += p * 10.0;
    const auto [lbox, rbox] = f.box.split(node.axis(), node.split);
    stack.push_back({f.node + 1, lbox, f.depth + 1});
    stack.push_back({node.right_child(), rbox, f.depth + 1});
  }

  s.avg_leaf_prims = nonempty_leaves > 0
                         ? static_cast<double>(nonempty_prims) /
                               static_cast<double>(nonempty_leaves)
                         : 0.0;
  return s;
}

}  // namespace kdtune
