#pragma once

// Breadth-first, level-at-a-time construction core shared by the in-place
// parallel builder (paper §IV-C) and the lazy builder's top phase (§IV-D).
// Primitive instances carry their node membership ("keeping track of the
// nodes each triangle belongs to"); each level runs two parallel phases:
// per-node binned SAH plane selection, then classification of every instance
// into the next level's child nodes. Parallelism is across nodes at deep
// levels and across primitives inside large nodes near the root.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "kdtree/build_common.hpp"
#include "kdtree/builder.hpp"
#include "kdtree/tree.hpp"
#include "parallel/thread_pool.hpp"

namespace kdtune {

/// What the lazy tree needs to expand a deferred node later: its box, and
/// its depth in the BFS tree so the expansion can cap the subtree depth to
/// the remaining traversal-stack budget (kMaxStackDepth minus the path above
/// the node) — otherwise a deferred node near the depth cap could expand
/// into a combined path deeper than the stack.
struct DeferredInfo {
  AABB box;
  int depth = 0;
};

/// Result of the BFS core: a flat tree where nodes with fewer than
/// `defer_below` primitives were left as deferred pseudo-leaves (flags ==
/// KdNode::kDeferred) whose node bounds/depths are recorded in
/// `deferred_bounds`. With defer_below == 0 nothing is deferred and the
/// result is a complete eager tree.
struct BfsResult {
  FlatTree tree;
  AABB bounds;
  std::unordered_map<std::uint32_t, DeferredInfo> deferred_bounds;
};

BfsResult bfs_build(std::span<const Triangle> tris, const BuildConfig& config,
                    ThreadPool& pool, std::int64_t defer_below);

}  // namespace kdtune
