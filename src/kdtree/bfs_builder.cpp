#include "kdtree/bfs_builder.hpp"

#include <array>
#include <atomic>
#include <cmath>

#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/parallel_reduce.hpp"

namespace kdtune {

namespace {

struct ActiveNode {
  std::uint32_t node;   ///< index into the output node array
  AABB box;
  std::size_t first;    ///< instance range in the level's instance arrays
  std::size_t count;
  int depth;
};

enum class Action : std::uint8_t { kLeaf, kDefer, kSplit };

struct Decision {
  Action action = Action::kLeaf;
  SplitCandidate split;
  std::size_t nl = 0;  ///< exact left instance count (straddlers included)
  std::size_t nr = 0;
};

struct BinSet {
  static constexpr int kMaxBins = 64;
  std::array<std::array<std::uint32_t, kMaxBins>, 3> enter{};
  std::array<std::array<std::uint32_t, kMaxBins>, 3> exit{};

  friend BinSet merge(BinSet a, const BinSet& b) {
    for (int ax = 0; ax < 3; ++ax) {
      for (int k = 0; k < kMaxBins; ++k) {
        a.enter[ax][k] += b.enter[ax][k];
        a.exit[ax][k] += b.exit[ax][k];
      }
    }
    return a;
  }
};

struct LevelArrays {
  std::vector<std::uint32_t> tri;
  std::vector<AABB> box;
};

class BfsBuild {
 public:
  BfsBuild(std::span<const Triangle> tris, const BuildConfig& config,
           ThreadPool& pool, std::int64_t defer_below)
      : tris_(tris), config_(config), pool_(pool), defer_below_(defer_below),
        sah_(SahParams::from_config(config)),
        bin_count_(std::clamp(config.bin_count, 4, BinSet::kMaxBins)) {}

  BfsResult run() {
    TraceSpan build_span("build.bfs", "build");
    BfsResult out;
    std::vector<PrimRef> refs = make_prim_refs(tris_);
    out.bounds = bounds_of_refs(refs);
    max_depth_ = config_.resolved_max_depth(refs.size());

    LevelArrays current;
    current.tri.reserve(refs.size());
    current.box.reserve(refs.size());
    for (const PrimRef& r : refs) {
      current.tri.push_back(r.tri);
      current.box.push_back(r.bounds);
    }

    out.tree.nodes.emplace_back();  // root placeholder
    out.tree.root = 0;
    std::vector<ActiveNode> active{
        {0, out.bounds, 0, current.tri.size(), 0}};

    while (!active.empty()) {
      trace_counter("bfs.active_nodes", static_cast<double>(active.size()),
                    "build");
      // Phase A: per-node plane selection + exact child counts (parallel
      // across nodes; across primitives inside wide nodes).
      std::vector<Decision> decisions(active.size());
      {
        TraceSpan span("bfs.split", "build");
        parallel_for(pool_, 0, active.size(), 1, [&](std::size_t i) {
          decisions[i] = decide(active[i], current);
        });
      }

      // Phase B (sequential, cheap): emit leaves, allocate children and the
      // next level's instance ranges.
      struct Scatter {
        std::size_t active_index;
        std::size_t l_first, r_first;
      };
      std::vector<ActiveNode> next_active;
      LevelArrays next;
      std::vector<Scatter> scatters;
      {
        TraceSpan span("bfs.emit", "build");
        std::size_t next_total = 0;
        for (std::size_t i = 0; i < active.size(); ++i) {
          if (decisions[i].action == Action::kSplit) {
            next_total += decisions[i].nl + decisions[i].nr;
          }
        }
        next.tri.resize(next_total);
        next.box.resize(next_total);

        std::size_t offset = 0;
        for (std::size_t i = 0; i < active.size(); ++i) {
          const ActiveNode& an = active[i];
          const Decision& d = decisions[i];
          if (d.action != Action::kSplit) {
            emit_leaf(out, an, current, d.action == Action::kDefer);
            continue;
          }

          const auto [lbox, rbox] =
              an.box.split(d.split.axis, d.split.position);
          const auto left_node =
              static_cast<std::uint32_t>(out.tree.nodes.size());
          out.tree.nodes.emplace_back();
          const auto right_node =
              static_cast<std::uint32_t>(out.tree.nodes.size());
          out.tree.nodes.emplace_back();
          out.tree.nodes[an.node] = KdNode::make_interior(
              d.split.axis, d.split.position, left_node, right_node);

          scatters.push_back({i, offset, offset + d.nl});
          next_active.push_back({left_node, lbox, offset, d.nl, an.depth + 1});
          next_active.push_back(
              {right_node, rbox, offset + d.nl, d.nr, an.depth + 1});
          offset += d.nl + d.nr;
        }
      }

      // Phase C: scatter instances into the children's ranges (parallel
      // across nodes; atomic cursors inside wide nodes).
      {
        TraceSpan span("bfs.scatter", "build");
        parallel_for(pool_, 0, scatters.size(), 1, [&](std::size_t s) {
          const Scatter& sc = scatters[s];
          scatter(active[sc.active_index], decisions[sc.active_index], current,
                  next, sc.l_first, sc.r_first);
        });
      }

      // Children that came out empty are finalized as empty leaves here
      // (they never need another level).
      std::vector<ActiveNode> pruned;
      pruned.reserve(next_active.size());
      for (const ActiveNode& an : next_active) {
        if (an.count == 0) {
          out.tree.nodes[an.node] = KdNode::make_leaf(
              static_cast<std::uint32_t>(out.tree.prim_indices.size()), 0);
        } else {
          pruned.push_back(an);
        }
      }

      active = std::move(pruned);
      current = std::move(next);
    }
    return out;
  }

 private:
  Decision decide(const ActiveNode& an, const LevelArrays& level) {
    Decision d;
    if (an.count <= 1 || an.depth >= max_depth_) return d;  // leaf
    if (defer_below_ > 0 &&
        an.count < static_cast<std::size_t>(defer_below_)) {
      d.action = Action::kDefer;
      return d;
    }

    const SplitCandidate best = best_binned_split(an, level);
    if (should_terminate(sah_, an.count, best)) return d;  // leaf

    d.action = Action::kSplit;
    d.split = best;
    // Exact child counts (the binned counts are approximate): one
    // classification pass.
    std::size_t nl = 0, nr = 0;
    const auto count_fn = [&](std::size_t b, std::size_t e) {
      std::pair<std::size_t, std::size_t> c{0, 0};
      for (std::size_t k = b; k < e; ++k) {
        const Side side = classify_box(level.box[an.first + k], best);
        if (side != Side::kRight) ++c.first;
        if (side != Side::kLeft) ++c.second;
      }
      return c;
    };
    if (an.count >= config_.wide_node_threshold) {
      const auto c = parallel_reduce<std::pair<std::size_t, std::size_t>>(
          pool_, 0, an.count, 8192, {0, 0}, count_fn,
          [](auto a, auto b) {
            return std::pair<std::size_t, std::size_t>{a.first + b.first,
                                                       a.second + b.second};
          });
      nl = c.first;
      nr = c.second;
    } else {
      const auto c = count_fn(0, an.count);
      nl = c.first;
      nr = c.second;
    }
    d.nl = nl;
    d.nr = nr;
    return d;
  }

  static Side classify_box(const AABB& box, const SplitCandidate& split) noexcept {
    const float lo = box.lo[split.axis];
    const float hi = box.hi[split.axis];
    if (lo == split.position && hi == split.position) {
      // In-plane primitives are duplicated into both children (see classify()
      // in build_common.cpp): one-sided placement drops closest hits whose
      // computed t rounds across the computed t_split.
      return Side::kBoth;
    }
    if (hi <= split.position) return Side::kLeft;
    if (lo >= split.position) return Side::kRight;
    return Side::kBoth;
  }

  SplitCandidate best_binned_split(const ActiveNode& an,
                                   const LevelArrays& level) {
    const int k = bin_count_;
    const Vec3 ext = an.box.extent();
    const Vec3 inv_width{
        ext.x > 0.0f ? static_cast<float>(k) / ext.x : 0.0f,
        ext.y > 0.0f ? static_cast<float>(k) / ext.y : 0.0f,
        ext.z > 0.0f ? static_cast<float>(k) / ext.z : 0.0f};

    const auto bin_of = [&](float v, Axis axis) {
      const int b = static_cast<int>((v - an.box.lo[axis]) * inv_width[axis]);
      return std::clamp(b, 0, k - 1);
    };

    const auto accumulate = [&](std::size_t b, std::size_t e) {
      BinSet bins;
      for (std::size_t i = b; i < e; ++i) {
        const AABB& box = level.box[an.first + i];
        for (int ax = 0; ax < 3; ++ax) {
          const Axis axis = static_cast<Axis>(ax);
          ++bins.enter[ax][static_cast<std::size_t>(bin_of(box.lo[axis], axis))];
          ++bins.exit[ax][static_cast<std::size_t>(bin_of(box.hi[axis], axis))];
        }
      }
      return bins;
    };

    BinSet bins;
    if (an.count >= config_.wide_node_threshold) {
      bins = parallel_reduce<BinSet>(
          pool_, 0, an.count, 8192, BinSet{}, accumulate,
          [](const BinSet& a, const BinSet& b) { return merge(a, b); });
    } else {
      bins = accumulate(0, an.count);
    }

    SplitCandidate best;
    for (int ax = 0; ax < 3; ++ax) {
      const Axis axis = static_cast<Axis>(ax);
      if (an.box.lo[axis] >= an.box.hi[axis]) continue;
      const float width = ext[axis] / static_cast<float>(k);
      std::size_t nl = 0;
      std::size_t nr = an.count;
      for (int j = 1; j < k; ++j) {
        nl += bins.enter[ax][static_cast<std::size_t>(j - 1)];
        nr -= bins.exit[ax][static_cast<std::size_t>(j - 1)];
        const float pos = an.box.lo[axis] + width * static_cast<float>(j);
        const SplitCandidate cand = evaluate_plane(sah_, an.box, axis, pos, nl,
                                                   0, nr, an.count);
        if (cand.cost < best.cost) best = cand;
      }
    }
    return best;
  }

  void emit_leaf(BfsResult& out, const ActiveNode& an,
                 const LevelArrays& level, bool deferred) {
    const auto first = static_cast<std::uint32_t>(out.tree.prim_indices.size());
    for (std::size_t i = 0; i < an.count; ++i) {
      out.tree.prim_indices.push_back(level.tri[an.first + i]);
    }
    const auto count = static_cast<std::uint32_t>(an.count);
    if (deferred) {
      out.tree.nodes[an.node] = KdNode::make_deferred(first, count);
      out.deferred_bounds.emplace(an.node, DeferredInfo{an.box, an.depth});
    } else {
      out.tree.nodes[an.node] = KdNode::make_leaf(first, count);
    }
  }

  void scatter(const ActiveNode& an, const Decision& d, const LevelArrays& cur,
               LevelArrays& next, std::size_t l_first, std::size_t r_first) {
    const auto [lbox, rbox] = an.box.split(d.split.axis, d.split.position);
    const auto place = [&](std::size_t idx, std::size_t li, std::size_t ri) {
      const std::uint32_t tri = cur.tri[an.first + idx];
      const AABB& box = cur.box[an.first + idx];
      switch (classify_box(box, d.split)) {
        case Side::kLeft:
          next.tri[li] = tri;
          next.box[li] = box;
          break;
        case Side::kRight:
          next.tri[ri] = tri;
          next.box[ri] = box;
          break;
        case Side::kBoth:
          // Child bounds are clipped to the child boxes; unlike the exact
          // sweep path the triangle is not re-clipped (standard for binned
          // breadth-first builders; the intersection is never empty because
          // straddlers satisfy lo < pos < hi).
          next.tri[li] = tri;
          next.box[li] = AABB::intersect(box, lbox);
          next.tri[ri] = tri;
          next.box[ri] = AABB::intersect(box, rbox);
          break;
      }
    };

    if (an.count >= config_.wide_node_threshold) {
      std::atomic<std::size_t> lc{l_first}, rc{r_first};
      parallel_for(pool_, 0, an.count, 8192, [&](std::size_t i) {
        const Side side = classify_box(cur.box[an.first + i], d.split);
        const std::size_t li = side != Side::kRight
                                   ? lc.fetch_add(1, std::memory_order_relaxed)
                                   : 0;
        const std::size_t ri = side != Side::kLeft
                                   ? rc.fetch_add(1, std::memory_order_relaxed)
                                   : 0;
        place(i, li, ri);
      });
    } else {
      std::size_t li = l_first, ri = r_first;
      for (std::size_t i = 0; i < an.count; ++i) {
        const Side side = classify_box(cur.box[an.first + i], d.split);
        place(i, li, ri);
        if (side != Side::kRight) ++li;
        if (side != Side::kLeft) ++ri;
      }
    }
  }

  std::span<const Triangle> tris_;
  const BuildConfig& config_;
  ThreadPool& pool_;
  std::int64_t defer_below_;
  SahParams sah_;
  int bin_count_;
  int max_depth_ = 0;
};

}  // namespace

BfsResult bfs_build(std::span<const Triangle> tris, const BuildConfig& config,
                    ThreadPool& pool, std::int64_t defer_below) {
  return BfsBuild(tris, config, pool, defer_below).run();
}

}  // namespace kdtune
