#include "kdtree/dot_export.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>
#include <vector>

namespace kdtune {

namespace {

const char* axis_name(Axis a) {
  switch (a) {
    case Axis::X: return "x";
    case Axis::Y: return "y";
    default: return "z";
  }
}

}  // namespace

void export_dot(std::ostream& out, const KdTree& tree, DotOptions opts) {
  const auto nodes = tree.nodes();
  out << "digraph kdtree {\n"
      << "  node [shape=box, fontsize=10];\n";

  struct Frame {
    std::uint32_t node;
    std::size_t depth;
    AABB box;
  };
  std::vector<Frame> stack{{tree.root(), 0, tree.bounds()}};
  const double root_volume = tree.bounds().volume();

  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const KdNode& node = nodes[f.node];

    std::string label;
    if (node.is_leaf()) {
      label = "leaf\\n" + std::to_string(node.b) + " prims";
    } else if (node.is_deferred()) {
      label = "deferred\\n" + std::to_string(node.b) + " prims";
    } else {
      label = std::string(axis_name(node.axis())) + " @ " +
              std::to_string(node.split);
    }
    if (opts.show_bounds && root_volume > 0.0) {
      const double share = f.box.volume() / root_volume * 100.0;
      label += "\\n" + std::to_string(share).substr(0, 4) + "% vol";
    }

    out << "  n" << f.node << " [label=\"" << label << "\"";
    if (node.is_leaf() && node.b == 0) out << ", style=dotted";
    if (node.is_leaf() && node.b > 0) out << ", style=filled, fillcolor=\"#e8f0fe\"";
    out << "];\n";

    if (!node.is_interior()) continue;
    if (opts.max_depth > 0 && f.depth + 1 >= opts.max_depth) {
      // Collapse both subtrees.
      out << "  c" << f.node
          << " [label=\"...\", shape=plaintext];\n  n" << f.node << " -> c"
          << f.node << " [style=dashed];\n";
      continue;
    }
    const auto [lbox, rbox] = f.box.split(node.axis(), node.split);
    out << "  n" << f.node << " -> n" << node.a << ";\n";
    out << "  n" << f.node << " -> n" << node.b << ";\n";
    stack.push_back({node.a, f.depth + 1, lbox});
    stack.push_back({node.b, f.depth + 1, rbox});
  }
  out << "}\n";
}

void export_dot_file(const std::string& path, const KdTree& tree,
                     DotOptions opts) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  export_dot(out, tree, opts);
}

}  // namespace kdtune
