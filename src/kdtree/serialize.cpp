#include "kdtree/serialize.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <vector>

namespace kdtune {

namespace {

constexpr char kMagic[4] = {'K', 'D', 'T', 'N'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kCompactVersion = 2;
constexpr std::uint32_t kWideVersion = 3;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value;
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("kd-tree file truncated");
  return value;
}

template <typename T>
void write_span(std::ostream& out, std::span<const T> data) {
  write_pod<std::uint64_t>(out, data.size());
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size_bytes()));
}

template <typename T>
std::vector<T> read_vector(std::istream& in, std::uint64_t sanity_cap) {
  const auto count = read_pod<std::uint64_t>(in);
  if (count > sanity_cap) {
    throw std::runtime_error("kd-tree file corrupt: implausible array size");
  }
  std::vector<T> data(count);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  if (!in) throw std::runtime_error("kd-tree file truncated");
  return data;
}

std::uint32_t read_header(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("not a kd-tree file (bad magic)");
  }
  return read_pod<std::uint32_t>(in);
}

/// Body of a v1 file, after the magic/version header.
std::unique_ptr<KdTree> load_tree_v1(std::istream& in) {
  const auto bounds = read_pod<AABB>(in);
  const auto root = read_pod<std::uint32_t>(in);
  constexpr std::uint64_t kCap = 1ull << 32;  // corruption guard
  auto nodes = read_vector<KdNode>(in, kCap);
  auto prim_indices = read_vector<std::uint32_t>(in, kCap);
  auto triangles = read_vector<Triangle>(in, kCap);

  // Structural sanity before handing out a traversable tree.
  if (nodes.empty() || root >= nodes.size()) {
    throw std::runtime_error("kd-tree file corrupt: bad root");
  }
  for (const KdNode& node : nodes) {
    if (node.is_interior()) {
      if (node.a >= nodes.size() || node.b >= nodes.size()) {
        throw std::runtime_error("kd-tree file corrupt: child out of range");
      }
    } else if (node.is_leaf()) {
      if (static_cast<std::uint64_t>(node.a) + node.b > prim_indices.size()) {
        throw std::runtime_error("kd-tree file corrupt: leaf range");
      }
    } else {
      throw std::runtime_error("kd-tree file corrupt: bad node flags");
    }
  }
  for (const std::uint32_t idx : prim_indices) {
    if (idx >= triangles.size()) {
      throw std::runtime_error("kd-tree file corrupt: primitive index");
    }
  }

  return std::make_unique<KdTree>(std::move(triangles), std::move(nodes),
                                  std::move(prim_indices), root, bounds);
}

/// Body of a v2 file, after the magic/version header. Structural validation
/// (child ranges, leaf blocks, triangle ids) happens inside the CompactKdTree
/// constructor, which rebuilds the SoA blocks.
std::unique_ptr<CompactKdTree> load_compact_v2(std::istream& in) {
  const auto bounds = read_pod<AABB>(in);
  constexpr std::uint64_t kCap = 1ull << 32;  // corruption guard
  auto nodes = read_vector<CompactNode>(in, kCap);
  auto leaf_tris = read_vector<std::uint32_t>(in, kCap);
  auto triangles = read_vector<Triangle>(in, kCap);
  return std::make_unique<CompactKdTree>(std::move(triangles),
                                         std::move(nodes),
                                         std::move(leaf_tris), bounds);
}

/// Collapses a loaded compact body to the requested width.
std::unique_ptr<WideTreeBase> widen(std::unique_ptr<CompactKdTree> compact,
                                    std::uint32_t width) {
  std::shared_ptr<const CompactKdTree> shared = std::move(compact);
  if (width == 4) return std::make_unique<WideKdTree4>(std::move(shared));
  if (width == 8) return std::make_unique<WideKdTree8>(std::move(shared));
  throw std::runtime_error("kd-tree file corrupt: unsupported wide width " +
                           std::to_string(width));
}

}  // namespace

void save_tree(std::ostream& out, const KdTree& tree) {
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  write_pod(out, tree.bounds());
  write_pod(out, tree.root());
  write_span(out, tree.nodes());
  write_span(out, tree.prim_indices());
  write_span(out, tree.triangles());
  if (!out) throw std::runtime_error("kd-tree write failed");
}

std::unique_ptr<KdTree> load_tree(std::istream& in) {
  const std::uint32_t version = read_header(in);
  if (version == kCompactVersion) {
    throw std::runtime_error(
        "kd-tree file is format v2 (compact layout): use load_compact_tree");
  }
  if (version == kWideVersion) {
    throw std::runtime_error(
        "kd-tree file is format v3 (wide layout): use load_wide_tree or "
        "load_compact_tree");
  }
  if (version != kVersion) {
    throw std::runtime_error("unsupported kd-tree file version " +
                             std::to_string(version));
  }
  return load_tree_v1(in);
}

void save_compact_tree(std::ostream& out, const CompactKdTree& tree) {
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kCompactVersion);
  write_pod(out, tree.bounds());
  write_span(out, tree.nodes());
  write_span(out, tree.leaf_tris());
  write_span(out, tree.triangles());
  if (!out) throw std::runtime_error("kd-tree write failed");
}

std::unique_ptr<CompactKdTree> load_compact_tree(std::istream& in) {
  const std::uint32_t version = read_header(in);
  if (version == kCompactVersion || version == kWideVersion) {
    if (version == kWideVersion) {
      (void)read_pod<std::uint32_t>(in);  // recorded width; body is compact
    }
    try {
      return load_compact_v2(in);
    } catch (const std::invalid_argument& e) {
      throw std::runtime_error(e.what());
    }
  }
  if (version == kVersion) {
    // Backward read: re-emit the builder layout into the serving layout.
    const std::unique_ptr<KdTree> v1 = load_tree_v1(in);
    return std::make_unique<CompactKdTree>(*v1);
  }
  throw std::runtime_error("unsupported kd-tree file version " +
                           std::to_string(version));
}

void save_wide_tree(std::ostream& out, const WideTreeBase& tree) {
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kWideVersion);
  write_pod(out, static_cast<std::uint32_t>(tree.width()));
  const CompactKdTree& source = tree.source();
  write_pod(out, source.bounds());
  write_span(out, source.nodes());
  write_span(out, source.leaf_tris());
  write_span(out, source.triangles());
  if (!out) throw std::runtime_error("kd-tree write failed");
}

std::unique_ptr<WideTreeBase> load_wide_tree(std::istream& in,
                                             int fallback_width) {
  const std::uint32_t version = read_header(in);
  if (version == kWideVersion) {
    const auto width = read_pod<std::uint32_t>(in);
    return widen(load_compact_v2(in), width);
  }
  const auto width = static_cast<std::uint32_t>(fallback_width);
  if (version == kCompactVersion) {
    return widen(load_compact_v2(in), width);
  }
  if (version == kVersion) {
    const std::unique_ptr<KdTree> v1 = load_tree_v1(in);
    return widen(std::make_unique<CompactKdTree>(*v1), width);
  }
  throw std::runtime_error("unsupported kd-tree file version " +
                           std::to_string(version));
}

void save_tree_file(const std::string& path, const KdTree& tree) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  save_tree(out, tree);
}

std::unique_ptr<KdTree> load_tree_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open: " + path);
  return load_tree(in);
}

void save_compact_tree_file(const std::string& path,
                            const CompactKdTree& tree) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  save_compact_tree(out, tree);
}

std::unique_ptr<CompactKdTree> load_compact_tree_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open: " + path);
  return load_compact_tree(in);
}

void save_wide_tree_file(const std::string& path, const WideTreeBase& tree) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  save_wide_tree(out, tree);
}

std::unique_ptr<WideTreeBase> load_wide_tree_file(const std::string& path,
                                                  int fallback_width) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open: " + path);
  return load_wide_tree(in, fallback_width);
}

}  // namespace kdtune
