#include "kdtree/serialize.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <vector>

namespace kdtune {

namespace {

constexpr char kMagic[4] = {'K', 'D', 'T', 'N'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value;
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("kd-tree file truncated");
  return value;
}

template <typename T>
void write_span(std::ostream& out, std::span<const T> data) {
  write_pod<std::uint64_t>(out, data.size());
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size_bytes()));
}

template <typename T>
std::vector<T> read_vector(std::istream& in, std::uint64_t sanity_cap) {
  const auto count = read_pod<std::uint64_t>(in);
  if (count > sanity_cap) {
    throw std::runtime_error("kd-tree file corrupt: implausible array size");
  }
  std::vector<T> data(count);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  if (!in) throw std::runtime_error("kd-tree file truncated");
  return data;
}

}  // namespace

void save_tree(std::ostream& out, const KdTree& tree) {
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  write_pod(out, tree.bounds());
  write_pod(out, tree.root());
  write_span(out, tree.nodes());
  write_span(out, tree.prim_indices());
  write_span(out, tree.triangles());
  if (!out) throw std::runtime_error("kd-tree write failed");
}

std::unique_ptr<KdTree> load_tree(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("not a kd-tree file (bad magic)");
  }
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kVersion) {
    throw std::runtime_error("unsupported kd-tree file version " +
                             std::to_string(version));
  }
  const auto bounds = read_pod<AABB>(in);
  const auto root = read_pod<std::uint32_t>(in);
  constexpr std::uint64_t kCap = 1ull << 32;  // corruption guard
  auto nodes = read_vector<KdNode>(in, kCap);
  auto prim_indices = read_vector<std::uint32_t>(in, kCap);
  auto triangles = read_vector<Triangle>(in, kCap);

  // Structural sanity before handing out a traversable tree.
  if (nodes.empty() || root >= nodes.size()) {
    throw std::runtime_error("kd-tree file corrupt: bad root");
  }
  for (const KdNode& node : nodes) {
    if (node.is_interior()) {
      if (node.a >= nodes.size() || node.b >= nodes.size()) {
        throw std::runtime_error("kd-tree file corrupt: child out of range");
      }
    } else if (node.is_leaf()) {
      if (static_cast<std::uint64_t>(node.a) + node.b > prim_indices.size()) {
        throw std::runtime_error("kd-tree file corrupt: leaf range");
      }
    } else {
      throw std::runtime_error("kd-tree file corrupt: bad node flags");
    }
  }
  for (const std::uint32_t idx : prim_indices) {
    if (idx >= triangles.size()) {
      throw std::runtime_error("kd-tree file corrupt: primitive index");
    }
  }

  return std::make_unique<KdTree>(std::move(triangles), std::move(nodes),
                                  std::move(prim_indices), root, bounds);
}

void save_tree_file(const std::string& path, const KdTree& tree) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  save_tree(out, tree);
}

std::unique_ptr<KdTree> load_tree_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open: " + path);
  return load_tree(in);
}

}  // namespace kdtune
