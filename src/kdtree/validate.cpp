#include "kdtree/validate.hpp"

#include <algorithm>
#include <unordered_set>

#include "geom/intersect.hpp"

namespace kdtune {

ValidationResult validate_tree(const KdTree& tree, bool check_completeness) {
  ValidationResult result;
  const auto nodes = tree.nodes();
  const auto prim_indices = tree.prim_indices();
  const auto tris = tree.triangles();

  if (nodes.empty()) {
    result.fail("tree has no nodes");
    return result;
  }
  if (tree.root() >= nodes.size()) {
    result.fail("root index out of range");
    return result;
  }

  struct Frame {
    std::uint32_t node;
    AABB box;
  };
  std::vector<Frame> stack{{tree.root(), tree.bounds()}};
  std::unordered_set<std::uint32_t> visited;

  while (!stack.empty() && result.errors.size() < 32) {
    const Frame f = stack.back();
    stack.pop_back();

    if (!visited.insert(f.node).second) {
      result.fail("node " + std::to_string(f.node) +
                  " reachable through two paths (not a tree)");
      continue;
    }
    const KdNode& node = nodes[f.node];

    if (node.is_interior()) {
      if (node.a >= nodes.size() || node.b >= nodes.size()) {
        result.fail("interior node " + std::to_string(f.node) +
                    " has child index out of range");
        continue;
      }
      if (node.split < f.box.lo[node.axis()] ||
          node.split > f.box.hi[node.axis()]) {
        result.fail("interior node " + std::to_string(f.node) +
                    " splits outside its box");
      }
      const auto [lbox, rbox] = f.box.split(node.axis(), node.split);
      stack.push_back({node.a, lbox});
      stack.push_back({node.b, rbox});
      continue;
    }

    if (node.is_deferred()) {
      result.fail("eager tree contains deferred node " + std::to_string(f.node));
      continue;
    }

    // Leaf checks.
    if (static_cast<std::size_t>(node.a) + node.b > prim_indices.size()) {
      result.fail("leaf " + std::to_string(f.node) +
                  " prim range out of bounds");
      continue;
    }
    constexpr float kEps = 1e-4f;
    AABB grown = f.box;
    grown.lo -= Vec3(kEps);
    grown.hi += Vec3(kEps);
    std::unordered_set<std::uint32_t> in_leaf;
    for (std::uint32_t k = 0; k < node.b; ++k) {
      const std::uint32_t tri = prim_indices[node.a + k];
      if (tri >= tris.size()) {
        result.fail("leaf " + std::to_string(f.node) +
                    " references triangle out of range");
        continue;
      }
      in_leaf.insert(tri);
      if (!grown.overlaps(tris[tri].bounds())) {
        result.fail("leaf " + std::to_string(f.node) + " stores triangle " +
                    std::to_string(tri) + " that does not touch its box");
      }
    }

    if (check_completeness) {
      for (std::uint32_t t = 0; t < tris.size(); ++t) {
        if (tris[t].degenerate()) continue;
        if (in_leaf.contains(t)) continue;
        // The tight test: the triangle's *clipped* geometry must intersect
        // the (slightly shrunk) leaf box to count as missing. Shrinking
        // avoids false positives from grazing contact, which either child
        // may legitimately own.
        AABB shrunk = f.box;
        shrunk.lo += Vec3(kEps);
        shrunk.hi -= Vec3(kEps);
        if (shrunk.empty()) continue;
        const AABB clipped = clipped_bounds(tris[t], shrunk);
        if (!clipped.empty() && clipped.volume() > 0.0f) {
          result.fail("leaf " + std::to_string(f.node) +
                      " is missing overlapping triangle " + std::to_string(t));
        }
      }
    }
  }

  return result;
}

}  // namespace kdtune
