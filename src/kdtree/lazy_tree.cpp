#include "kdtree/lazy_tree.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>
#include <utility>

#include "geom/closest_point.hpp"
#include "geom/intersect.hpp"
#include "kdtree/build_common.hpp"
#include "kdtree/knn.hpp"

namespace kdtune {

namespace {

// Generous expansion headroom: a lazy tree can at most hold the fully eager
// tree, whose node/reference counts are bounded by duplication along the
// depth-capped recursion. Exceeding these throws (StablePool), which tests
// would catch long before production use.
std::size_t node_capacity(std::size_t initial, std::size_t tris) {
  return std::max<std::size_t>(4096, initial + 32 * tris + 1024);
}

std::size_t prim_capacity(std::size_t initial, std::size_t tris) {
  return std::max<std::size_t>(4096, initial + 64 * tris + 1024);
}

}  // namespace

LazyKdTree::LazyKdTree(std::vector<Triangle> triangles,
                       std::vector<KdNode> nodes,
                       std::vector<std::uint32_t> prim_indices,
                       std::uint32_t root, AABB bounds,
                       std::unordered_map<std::uint32_t, DeferredInfo>
                           deferred_bounds,
                       BuildConfig config)
    : triangles_(std::move(triangles)),
      bounds_(bounds),
      root_(root),
      config_(config),
      nodes_(node_capacity(nodes.size(), triangles_.size())),
      prims_(prim_capacity(prim_indices.size(), triangles_.size())),
      deferred_bounds_(std::move(deferred_bounds)) {
  const std::size_t nbase = nodes_.append(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    LazyNode& dst = nodes_[nbase + i];
    dst.split = nodes[i].split;
    dst.a = nodes[i].a;
    dst.b = nodes[i].b;
    dst.flags.store(nodes[i].flags, std::memory_order_release);
  }
  const std::size_t pbase = prims_.append(prim_indices.size());
  for (std::size_t i = 0; i < prim_indices.size(); ++i) {
    prims_[pbase + i] = prim_indices[i];
  }
}

LazyKdTree::Snapshot LazyKdTree::resolve(std::uint32_t index) const {
  const LazyNode& node = nodes_[index];
  std::uint32_t flags = node.flags.load(std::memory_order_acquire);
  if (flags == KdNode::kDeferred) {
    expand(index);
    flags = node.flags.load(std::memory_order_acquire);
  }
  return {node.split, flags, node.a, node.b};
}

void LazyKdTree::expand(std::uint32_t index) const {
  // The paper serializes deferred processing with an OpenMP critical
  // section; this mutex is its equivalent.
  std::lock_guard lock(expand_mutex_);
  LazyNode& node = nodes_[index];
  if (node.flags.load(std::memory_order_relaxed) != KdNode::kDeferred) {
    return;  // another ray expanded it while we waited
  }

  const auto it = deferred_bounds_.find(index);
  const AABB box = it != deferred_bounds_.end() ? it->second.box : bounds_;
  const int node_depth = it != deferred_bounds_.end() ? it->second.depth : 0;

  // Rebuild primitive refs for the subtree, re-clipping each triangle to the
  // node box ("perfect splits" for the expansion sweep).
  std::vector<PrimRef> refs;
  refs.reserve(node.b);
  for (std::uint32_t k = 0; k < node.b; ++k) {
    const std::uint32_t tri = prims_[node.a + k];
    const AABB clipped = clipped_bounds(triangles_[tri], box);
    if (!clipped.empty()) refs.push_back({tri, clipped});
  }
  if (refs.empty() && node.b > 0) {
    // Every clip grazed the box: keep the original primitives as a plain leaf.
    node.flags.store(KdNode::kLeaf, std::memory_order_release);
    if (it != deferred_bounds_.end()) deferred_bounds_.erase(it);
    expansions_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  // Sequential SAH sweep over the (small, < R primitives) subtree. The
  // subtree depth is capped to the traversal stack budget *remaining below
  // this node*, so the combined BFS + expansion path can never overflow the
  // near/far stack (which would silently drop far children).
  const SahParams sah = SahParams::from_config(config_);
  const int max_depth =
      std::max(0, std::min(config_.resolved_max_depth(refs.size()),
                           traversal_detail::kMaxStackDepth - node_depth));

  struct Rec {
    static std::unique_ptr<BuildNode> build(std::span<const Triangle> tris,
                                            const SahParams& sah,
                                            std::vector<PrimRef> prims,
                                            const AABB& box, int depth,
                                            int max_depth, bool clip) {
      if (prims.size() <= 1 || depth >= max_depth) {
        return BuildNode::make_leaf(prims);
      }
      const SplitCandidate best = find_best_split_sweep(sah, box, prims);
      if (should_terminate(sah, prims.size(), best)) {
        return BuildNode::make_leaf(prims);
      }
      const auto [lbox, rbox] = box.split(best.axis, best.position);
      std::vector<PrimRef> left, right;
      partition_prims(prims, tris, best, lbox, rbox, left, right, clip);
      prims.clear();
      prims.shrink_to_fit();
      auto n = std::make_unique<BuildNode>();
      n->leaf = false;
      n->axis = best.axis;
      n->split = best.position;
      n->left =
          build(tris, sah, std::move(left), lbox, depth + 1, max_depth, clip);
      n->right =
          build(tris, sah, std::move(right), rbox, depth + 1, max_depth, clip);
      return n;
    }
  };

  const std::unique_ptr<BuildNode> sub =
      Rec::build(triangles_, sah, std::move(refs), box, 0, max_depth,
                 config_.clip_straddlers);
  const FlatTree flat = flatten(*sub);

  // Append the subtree's primitive references and non-root nodes, remapping
  // indices: flat-node i (i > 0) lands at nbase + i - 1; the flat root
  // overwrites the deferred node in place.
  const std::size_t pbase = prims_.append(flat.prim_indices.size());
  for (std::size_t i = 0; i < flat.prim_indices.size(); ++i) {
    prims_[pbase + i] = flat.prim_indices[i];
  }

  const std::size_t extra = flat.nodes.size() - 1;
  const std::size_t nbase = extra > 0 ? nodes_.append(extra) : 0;
  const auto remap = [&](std::uint32_t child) {
    return static_cast<std::uint32_t>(nbase + child - 1);
  };

  for (std::size_t i = 1; i < flat.nodes.size(); ++i) {
    const KdNode& src = flat.nodes[i];
    LazyNode& dst = nodes_[nbase + i - 1];
    dst.split = src.split;
    if (src.is_leaf()) {
      dst.a = static_cast<std::uint32_t>(pbase + src.a);
      dst.b = src.b;
    } else {
      dst.a = remap(src.a);
      dst.b = remap(src.b);
    }
    dst.flags.store(src.flags, std::memory_order_release);
  }

  // Publish the root last: after this store, other threads may traverse the
  // subtree without taking the lock.
  const KdNode& src_root = flat.nodes[flat.root];
  node.split = src_root.split;
  if (src_root.is_leaf()) {
    node.a = static_cast<std::uint32_t>(pbase + src_root.a);
    node.b = src_root.b;
  } else {
    node.a = remap(src_root.a);
    node.b = remap(src_root.b);
  }
  node.flags.store(src_root.flags, std::memory_order_release);

  if (it != deferred_bounds_.end()) deferred_bounds_.erase(it);
  expansions_.fetch_add(1, std::memory_order_relaxed);
}

template <typename LeafFn>
void LazyKdTree::traverse(const Ray& ray, LeafFn&& leaf_fn) const {
  float t_min, t_max;
  if (!intersect_aabb(ray, bounds_, t_min, t_max)) return;

  using traversal_detail::StackEntry;
  StackEntry stack[traversal_detail::kMaxStackDepth];
  int sp = 0;
  std::uint32_t current = root_;

  // Stack saturation should be structurally impossible: resolved_max_depth
  // clamps every build (and every lazy expansion budgets its subtree) to
  // kMaxStackDepth, and traversal pushes at most one entry per tree level.
  // Dropping the far child instead would silently lose hits, so a violation
  // asserts in debug builds and is counted (not hidden) in release builds.
  const auto push_far = [&](std::uint32_t far, float fmin, float fmax) {
    if (sp < traversal_detail::kMaxStackDepth) {
      stack[sp++] = {far, fmin, fmax};
    } else {
      assert(false && "LazyKdTree::traverse: stack overflow (depth clamp violated)");
      stack_overflows_.fetch_add(1, std::memory_order_relaxed);
    }
  };

  for (;;) {
    const Snapshot node = resolve(current);
    if (node.flags == KdNode::kLeaf) {
      if (leaf_fn(node, t_min, t_max)) return;
      if (sp == 0) return;
      --sp;
      current = stack[sp].node;
      t_min = stack[sp].t_min;
      t_max = stack[sp].t_max;
      continue;
    }

    const Axis axis = static_cast<Axis>(node.flags);
    const float origin = ray.origin[axis];
    const float t_split = (node.split - origin) * ray.inv_dir[axis];

    std::uint32_t near = node.a;
    std::uint32_t far = node.b;
    const bool below =
        origin < node.split || (origin == node.split && ray.dir[axis] <= 0.0f);
    if (!below) std::swap(near, far);

    if (std::isnan(t_split)) {
      push_far(far, t_min, t_max);
      current = near;
    } else if (t_split > t_max || t_split <= 0.0f) {
      current = near;
    } else if (t_split < t_min) {
      current = far;
    } else {
      push_far(far, t_split, t_max);
      current = near;
      t_max = t_split;
    }
  }
}

Hit LazyKdTree::closest_hit(const Ray& ray) const {
  Hit best;
  Ray r = ray;
  traverse(ray, [&](const Snapshot& node, float, float t_max) {
    for (std::uint32_t k = 0; k < node.b; ++k) {
      const std::uint32_t tri = prims_[node.a + k];
      float t, u, v;
      if (intersect(r, triangles_[tri], t, u, v)) {
        best = {t, tri, u, v};
        r.t_max = t;
      }
    }
    return best.valid() && best.t <= t_max;
  });
  return best;
}

bool LazyKdTree::any_hit(const Ray& ray) const {
  bool found = false;
  traverse(ray, [&](const Snapshot& node, float, float) {
    for (std::uint32_t k = 0; k < node.b; ++k) {
      const std::uint32_t tri = prims_[node.a + k];
      float t, u, v;
      if (intersect(ray, triangles_[tri], t, u, v)) {
        found = true;
        return true;
      }
    }
    return false;
  });
  return found;
}

void LazyKdTree::query_range(const AABB& box,
                             std::vector<std::uint32_t>& out) const {
  const std::size_t start = out.size();
  if (nodes_.size() == 0 || !bounds_.overlaps(box)) return;

  struct Frame {
    std::uint32_t node;
    AABB node_box;
  };
  std::vector<Frame> stack{{root_, bounds_}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Snapshot node = resolve(f.node);  // expands deferred nodes it meets
    if (node.flags == KdNode::kLeaf) {
      for (std::uint32_t k = 0; k < node.b; ++k) {
        const std::uint32_t tri = prims_[node.a + k];
        if (box.overlaps(triangles_[tri].bounds()) &&
            !clipped_bounds(triangles_[tri], box).empty()) {
          out.push_back(tri);
        }
      }
      continue;
    }
    const auto [lbox, rbox] =
        f.node_box.split(static_cast<Axis>(node.flags), node.split);
    if (box.overlaps(lbox)) stack.push_back({node.a, lbox});
    if (box.overlaps(rbox)) stack.push_back({node.b, rbox});
  }

  std::sort(out.begin() + start, out.end());
  out.erase(std::unique(out.begin() + start, out.end()), out.end());
}

void LazyKdTree::nearest_core(const Vec3& point,
                              KnnCollector& collector) const {
  if (nodes_.size() == 0) return;

  struct Entry {
    float dist_sq;
    std::uint32_t node;
    AABB box;

    bool operator>(const Entry& o) const noexcept {
      return dist_sq > o.dist_sq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  const float root_dist = distance_squared(point, bounds_);
  if (root_dist > collector.bound()) return;  // radius seed prunes the root
  queue.push({root_dist, root_, bounds_});

  while (!queue.empty()) {
    const Entry entry = queue.top();
    queue.pop();
    // Strictly farther entries cannot contribute; entries at exactly the
    // bound still can (equal-distance, lower-id ties) — see knn.hpp.
    if (entry.dist_sq > collector.bound()) break;

    const Snapshot node = resolve(entry.node);
    if (node.flags == KdNode::kLeaf) {
      for (std::uint32_t k = 0; k < node.b; ++k) {
        const std::uint32_t tri = prims_[node.a + k];
        const Vec3 cp = closest_point_on_triangle(point, triangles_[tri]);
        collector.offer(tri, cp, length_squared(point - cp));
      }
      continue;
    }
    const auto [lbox, rbox] =
        entry.box.split(static_cast<Axis>(node.flags), node.split);
    const float dl = distance_squared(point, lbox);
    const float dr = distance_squared(point, rbox);
    if (dl <= collector.bound()) queue.push({dl, node.a, lbox});
    if (dr <= collector.bound()) queue.push({dr, node.b, rbox});
  }
}

NearestResult LazyKdTree::nearest(const Vec3& point) const {
  KnnCollector collector(1, std::numeric_limits<float>::infinity());
  nearest_core(point, collector);
  return collector.best();
}

void LazyKdTree::do_nearest_k(const Vec3& point, std::size_t k,
                              std::vector<NearestResult>& out,
                              float max_distance) const {
  KnnCollector collector(k, max_distance);
  nearest_core(point, collector);
  collector.take_sorted(out);
}

TreeStats LazyKdTree::stats() const {
  // Snapshot the pool into a flat array and reuse the shared walker. The
  // snapshot must be taken under the expansion lock: expand() writes
  // split/a/b of the node under expansion (and of freshly appended nodes)
  // *before* release-publishing flags, and the pool's size is published at
  // append time, before those fields are written. A lock-free index scan can
  // therefore observe a node mid-publication — torn split/a/b would send
  // compute_stats walking garbage child indices. Traversal never has this
  // problem because it only reaches nodes through parent links published
  // after the fields (the flags acquire/release handshake), but a flat scan
  // bypasses that protocol, so it synchronizes with the writer directly.
  std::vector<KdNode> snapshot;
  {
    std::lock_guard lock(expand_mutex_);
    const std::size_t n = nodes_.size();
    snapshot.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const LazyNode& ln = nodes_[i];
      KdNode kn;
      kn.split = ln.split;
      kn.flags = ln.flags.load(std::memory_order_acquire);
      kn.a = ln.a;
      kn.b = ln.b;
      snapshot.push_back(kn);
    }
  }
  return compute_stats(snapshot, root_, bounds_);
}

std::size_t LazyKdTree::deferred_remaining() const {
  std::lock_guard lock(expand_mutex_);
  return deferred_bounds_.size();
}

void LazyKdTree::expand_all() const {
  // Expansion never creates new deferred nodes, so one growing scan suffices.
  // Unlike stats(), this scan touches only the atomic flags word, never the
  // plain split/a/b fields, so it needs no lock even while other threads
  // expand concurrently: a node observed mid-publication still carries its
  // default-constructed kLeaf flags (not kDeferred) and is skipped here, and
  // a stale kDeferred read just sends us into expand(), which re-checks under
  // the lock and returns if someone else got there first.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].flags.load(std::memory_order_acquire) == KdNode::kDeferred) {
      expand(static_cast<std::uint32_t>(i));
    }
  }
}

}  // namespace kdtune
