#include "bvh/bvh.hpp"

#include <algorithm>
#include <array>
#include <queue>

#include "geom/closest_point.hpp"
#include "geom/intersect.hpp"
#include "kdtree/knn.hpp"

namespace kdtune {

namespace {

constexpr int kMaxBins = 32;

struct BuildPrim {
  std::uint32_t tri;
  AABB box;
  Vec3 centroid;
};

struct BuildNode {
  AABB box;
  std::unique_ptr<BuildNode> left;
  std::unique_ptr<BuildNode> right;
  std::vector<std::uint32_t> prims;

  bool is_leaf() const noexcept { return left == nullptr; }
};

struct BuildContext {
  const BvhConfig* config;
  ThreadPool* pool;
  int task_depth;
  int max_depth;
};

std::unique_ptr<BuildNode> make_leaf(const AABB& box,
                                     std::span<const BuildPrim> prims) {
  auto node = std::make_unique<BuildNode>();
  node->box = box;
  node->prims.reserve(prims.size());
  for (const BuildPrim& p : prims) node->prims.push_back(p.tri);
  return node;
}

std::unique_ptr<BuildNode> build_rec(const BuildContext& ctx,
                                     std::vector<BuildPrim> prims, int depth) {
  AABB box;
  AABB centroid_box;
  for (const BuildPrim& p : prims) {
    box.expand(p.box);
    centroid_box.expand(p.centroid);
  }

  const auto count = prims.size();
  if (count <= static_cast<std::size_t>(ctx.config->max_leaf_size) ||
      depth >= ctx.max_depth) {
    return make_leaf(box, prims);
  }

  const Axis axis = centroid_box.longest_axis();
  const float extent = centroid_box.extent()[axis];
  if (extent <= 0.0f) {
    // All centroids coincide: binning cannot separate them. Split the list
    // in half to bound leaf sizes.
    auto node = std::make_unique<BuildNode>();
    node->box = box;
    std::vector<BuildPrim> left(prims.begin(), prims.begin() + count / 2);
    std::vector<BuildPrim> right(prims.begin() + count / 2, prims.end());
    node->left = build_rec(ctx, std::move(left), depth + 1);
    node->right = build_rec(ctx, std::move(right), depth + 1);
    return node;
  }

  // Binned SAH over the centroid extent.
  const int k = std::clamp(ctx.config->bin_count, 2, kMaxBins);
  const float inv_width = static_cast<float>(k) / extent;
  const float lo = centroid_box.lo[axis];
  const auto bin_of = [&](const BuildPrim& p) {
    return std::clamp(static_cast<int>((p.centroid[axis] - lo) * inv_width), 0,
                      k - 1);
  };

  std::array<AABB, kMaxBins> bin_box;
  std::array<std::uint32_t, kMaxBins> bin_count{};
  for (const BuildPrim& p : prims) {
    const int b = bin_of(p);
    bin_box[static_cast<std::size_t>(b)].expand(p.box);
    ++bin_count[static_cast<std::size_t>(b)];
  }

  // Suffix sweep (right-to-left), then prefix sweep evaluating each boundary.
  std::array<AABB, kMaxBins> suffix_box;
  std::array<std::uint32_t, kMaxBins> suffix_count{};
  AABB acc_box;
  std::uint32_t acc_count = 0;
  for (int b = k - 1; b >= 0; --b) {
    acc_box.expand(bin_box[static_cast<std::size_t>(b)]);
    acc_count += bin_count[static_cast<std::size_t>(b)];
    suffix_box[static_cast<std::size_t>(b)] = acc_box;
    suffix_count[static_cast<std::size_t>(b)] = acc_count;
  }

  const double area = box.surface_area();
  double best_cost = ctx.config->ci * static_cast<double>(count);  // leaf cost
  int best_boundary = -1;
  AABB prefix_box;
  std::uint32_t prefix_count = 0;
  for (int b = 0; b + 1 < k; ++b) {
    prefix_box.expand(bin_box[static_cast<std::size_t>(b)]);
    prefix_count += bin_count[static_cast<std::size_t>(b)];
    const std::uint32_t right_count = suffix_count[static_cast<std::size_t>(b + 1)];
    if (prefix_count == 0 || right_count == 0 || area <= 0.0) continue;
    const double cost =
        ctx.config->ct +
        ctx.config->ci *
            (prefix_box.surface_area() * prefix_count +
             suffix_box[static_cast<std::size_t>(b + 1)].surface_area() *
                 right_count) /
            area;
    if (cost < best_cost) {
      best_cost = cost;
      best_boundary = b;
    }
  }

  if (best_boundary < 0) {
    // No split beats the leaf; refuse only within the size bound, otherwise
    // fall back to a median split so leaves stay small.
    if (count <= 4 * static_cast<std::size_t>(ctx.config->max_leaf_size)) {
      return make_leaf(box, prims);
    }
    best_boundary = k / 2 - 1;
  }

  std::vector<BuildPrim> left, right;
  left.reserve(count);
  right.reserve(count);
  for (const BuildPrim& p : prims) {
    (bin_of(p) <= best_boundary ? left : right).push_back(p);
  }
  if (left.empty() || right.empty()) {
    return make_leaf(box, prims);  // median fallback degenerated
  }
  prims.clear();
  prims.shrink_to_fit();

  auto node = std::make_unique<BuildNode>();
  node->box = box;
  if (depth < ctx.task_depth && ctx.pool->worker_count() > 0) {
    TaskGroup group(*ctx.pool);
    group.run([&ctx, &node, l = std::move(left), depth]() mutable {
      node->left = build_rec(ctx, std::move(l), depth + 1);
    });
    node->right = build_rec(ctx, std::move(right), depth + 1);
    group.wait();
  } else {
    node->left = build_rec(ctx, std::move(left), depth + 1);
    node->right = build_rec(ctx, std::move(right), depth + 1);
  }
  return node;
}

std::uint32_t flatten(const BuildNode& node, std::vector<Bvh::Node>& nodes,
                      std::vector<std::uint32_t>& prim_indices) {
  const auto index = static_cast<std::uint32_t>(nodes.size());
  nodes.emplace_back();
  if (node.is_leaf()) {
    Bvh::Node& out = nodes[index];
    out.box = node.box;
    out.first = static_cast<std::uint32_t>(prim_indices.size());
    out.count = static_cast<std::uint32_t>(node.prims.size());
    prim_indices.insert(prim_indices.end(), node.prims.begin(),
                        node.prims.end());
    return index;
  }
  const std::uint32_t left = flatten(*node.left, nodes, prim_indices);
  const std::uint32_t right = flatten(*node.right, nodes, prim_indices);
  Bvh::Node& out = nodes[index];
  out.box = node.box;
  out.left = left;
  out.right = right;
  out.count = 0;
  return index;
}

}  // namespace

Bvh::Bvh(std::vector<Triangle> triangles, std::vector<Node> nodes,
         std::vector<std::uint32_t> prim_indices, AABB bounds)
    : triangles_(std::move(triangles)),
      nodes_(std::move(nodes)),
      prim_indices_(std::move(prim_indices)),
      bounds_(bounds) {}

std::unique_ptr<Bvh> build_bvh(std::span<const Triangle> tris,
                               const BvhConfig& config, ThreadPool& pool) {
  std::vector<BuildPrim> prims;
  prims.reserve(tris.size());
  AABB bounds;
  for (std::uint32_t i = 0; i < tris.size(); ++i) {
    if (tris[i].degenerate()) continue;
    const AABB box = tris[i].bounds();
    bounds.expand(box);
    prims.push_back({i, box, box.center()});
  }

  std::vector<Bvh::Node> nodes;
  std::vector<std::uint32_t> prim_indices;
  if (prims.empty()) {
    // Root is an empty leaf; its empty AABB never intersects anything.
    nodes.push_back(Bvh::Node{});
    return std::make_unique<Bvh>(
        std::vector<Triangle>(tris.begin(), tris.end()), std::move(nodes),
        std::move(prim_indices), bounds);
  }

  // Task spawn depth ~ log2(4 * pool width), like the kd node-level scheme.
  int task_depth = 0;
  for (unsigned w = pool.concurrency() * 4; w > 1; w /= 2) ++task_depth;
  BuildContext ctx{&config, &pool, pool.worker_count() > 0 ? task_depth : 0,
                   64};
  const std::unique_ptr<BuildNode> root = build_rec(ctx, std::move(prims), 0);
  flatten(*root, nodes, prim_indices);
  return std::make_unique<Bvh>(std::vector<Triangle>(tris.begin(), tris.end()),
                               std::move(nodes), std::move(prim_indices),
                               bounds);
}

Hit Bvh::closest_hit(const Ray& ray) const {
  Hit best;
  if (nodes_.empty()) return best;
  Ray r = ray;

  std::uint32_t stack[128];
  int sp = 0;
  stack[sp++] = 0;

  while (sp > 0) {
    const Node& node = nodes_[stack[--sp]];
    float t0, t1;
    if (!intersect_aabb(r, node.box, t0, t1)) continue;
    if (node.is_leaf()) {
      for (std::uint32_t k = 0; k < node.count; ++k) {
        const std::uint32_t tri = prim_indices_[node.first + k];
        float t, u, v;
        if (intersect(r, triangles_[tri], t, u, v)) {
          best = {t, tri, u, v};
          r.t_max = t;  // shrink: later boxes beyond t are skipped
        }
      }
      continue;
    }
    // Near child popped first: push the farther one below the nearer one.
    float l0 = 0, l1 = 0, r0 = 0, r1 = 0;
    const bool hit_l = intersect_aabb(r, nodes_[node.left].box, l0, l1);
    const bool hit_r = intersect_aabb(r, nodes_[node.right].box, r0, r1);
    if (hit_l && hit_r) {
      const bool left_first = l0 <= r0;
      stack[sp++] = left_first ? node.right : node.left;
      stack[sp++] = left_first ? node.left : node.right;
    } else if (hit_l) {
      stack[sp++] = node.left;
    } else if (hit_r) {
      stack[sp++] = node.right;
    }
    if (sp > 126) sp = 126;  // depth guard (cannot trigger: depth <= 64)
  }
  return best;
}

bool Bvh::any_hit(const Ray& ray) const {
  if (nodes_.empty()) return false;
  std::uint32_t stack[128];
  int sp = 0;
  stack[sp++] = 0;
  while (sp > 0) {
    const Node& node = nodes_[stack[--sp]];
    if (!intersect_aabb(ray, node.box)) continue;
    if (node.is_leaf()) {
      for (std::uint32_t k = 0; k < node.count; ++k) {
        const std::uint32_t tri = prim_indices_[node.first + k];
        float t, u, v;
        if (intersect(ray, triangles_[tri], t, u, v)) return true;
      }
      continue;
    }
    stack[sp++] = node.left;
    stack[sp++] = node.right;
    if (sp > 126) sp = 126;
  }
  return false;
}

void Bvh::query_range(const AABB& box, std::vector<std::uint32_t>& out) const {
  const std::size_t start = out.size();
  if (nodes_.empty()) return;
  std::vector<std::uint32_t> stack{0};
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (!node.box.overlaps(box)) continue;
    if (node.is_leaf()) {
      for (std::uint32_t k = 0; k < node.count; ++k) {
        const std::uint32_t tri = prim_indices_[node.first + k];
        if (box.overlaps(triangles_[tri].bounds()) &&
            !clipped_bounds(triangles_[tri], box).empty()) {
          out.push_back(tri);
        }
      }
      continue;
    }
    stack.push_back(node.left);
    stack.push_back(node.right);
  }
  std::sort(out.begin() + start, out.end());
  out.erase(std::unique(out.begin() + start, out.end()), out.end());
}

void Bvh::nearest_core(const Vec3& point, KnnCollector& collector) const {
  // An empty scene's root is a default node with an empty box; it reads as
  // an interior with self-children, so bail before seeding the queue (its
  // infinite box distance ties the infinite initial bound and would loop).
  if (nodes_.empty() || nodes_[0].box.empty()) return;

  struct Entry {
    float dist_sq;
    std::uint32_t node;
    bool operator>(const Entry& o) const noexcept {
      return dist_sq > o.dist_sq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  const float root_dist = distance_squared(point, nodes_[0].box);
  if (root_dist > collector.bound()) return;  // radius seed prunes the root
  queue.push({root_dist, 0});
  while (!queue.empty()) {
    const Entry entry = queue.top();
    queue.pop();
    // Strictly farther entries cannot contribute; entries at exactly the
    // bound still can (equal-distance, lower-id ties) — see knn.hpp.
    if (entry.dist_sq > collector.bound()) break;
    const Node& node = nodes_[entry.node];
    if (node.is_leaf()) {
      for (std::uint32_t k = 0; k < node.count; ++k) {
        const std::uint32_t tri = prim_indices_[node.first + k];
        const Vec3 cp = closest_point_on_triangle(point, triangles_[tri]);
        collector.offer(tri, cp, length_squared(point - cp));
      }
      continue;
    }
    const float dl = distance_squared(point, nodes_[node.left].box);
    const float dr = distance_squared(point, nodes_[node.right].box);
    if (dl <= collector.bound()) queue.push({dl, node.left});
    if (dr <= collector.bound()) queue.push({dr, node.right});
  }
}

NearestResult Bvh::nearest(const Vec3& point) const {
  KnnCollector collector(1, std::numeric_limits<float>::infinity());
  nearest_core(point, collector);
  return collector.best();
}

void Bvh::do_nearest_k(const Vec3& point, std::size_t k,
                       std::vector<NearestResult>& out,
                       float max_distance) const {
  KnnCollector collector(k, max_distance);
  nearest_core(point, collector);
  collector.take_sorted(out);
}

TreeStats Bvh::stats() const {
  TreeStats s;
  if (nodes_.empty()) return s;
  const double root_area = nodes_[0].box.surface_area();

  struct Frame {
    std::uint32_t node;
    std::size_t depth;
  };
  std::vector<Frame> stack{{0, 1}};
  std::size_t nonempty_prims = 0, nonempty_leaves = 0;
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Node& node = nodes_[f.node];
    ++s.node_count;
    s.max_depth = std::max(s.max_depth, f.depth);
    const double p =
        root_area > 0.0 ? node.box.surface_area() / root_area : 0.0;
    if (node.is_leaf() ||
        (node.left == 0 && node.right == 0 && node.count == 0)) {
      ++s.leaf_count;
      if (node.count == 0) ++s.empty_leaf_count;
      s.prim_refs += node.count;
      if (node.count > 0) {
        nonempty_prims += node.count;
        ++nonempty_leaves;
      }
      s.sah_cost += p * 1.5 * static_cast<double>(node.count);
      continue;
    }
    s.sah_cost += p * 1.0;
    stack.push_back({node.left, f.depth + 1});
    stack.push_back({node.right, f.depth + 1});
  }
  s.avg_leaf_prims = nonempty_leaves > 0
                         ? static_cast<double>(nonempty_prims) /
                               static_cast<double>(nonempty_leaves)
                         : 0.0;
  return s;
}

}  // namespace kdtune
