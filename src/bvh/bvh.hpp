#pragma once

// Bounding Volume Hierarchy — the standard alternative acceleration structure
// (the paper's related work tunes a BVH-based ray tracer, Ganestam & Doggett
// 2012). Included as the cross-structure baseline: the ablation benches
// compare an autotuned SAH kd-tree against a binned-SAH BVH on the same
// scenes.
//
// Implements the same query interface as the kd-trees (KdTreeBase), so every
// renderer/bench component accepts it unchanged.

#include <memory>

#include "kdtree/tree.hpp"
#include "parallel/thread_pool.hpp"

namespace kdtune {

struct BvhConfig {
  /// Binned-SAH bins along the centroid extent.
  int bin_count = 16;
  /// Leaves are created at or below this primitive count (or when the SAH
  /// prefers not splitting).
  int max_leaf_size = 4;
  /// SAH constants (relative, like the kd-tree's CT/CI).
  double ct = 1.0;
  double ci = 1.5;
};

class Bvh final : public KdTreeBase {
 public:
  /// Node of the flat BVH. Leaves have count > 0 and reference a range of
  /// the primitive-index array; interior nodes store two child indices.
  struct Node {
    AABB box;
    std::uint32_t left = 0;   ///< interior only
    std::uint32_t right = 0;  ///< interior only
    std::uint32_t first = 0;  ///< leaf: first primitive index
    std::uint32_t count = 0;  ///< leaf: primitive count; 0 = interior

    bool is_leaf() const noexcept { return count > 0; }
  };

  Bvh(std::vector<Triangle> triangles, std::vector<Node> nodes,
      std::vector<std::uint32_t> prim_indices, AABB bounds);

  Hit closest_hit(const Ray& ray) const override;
  bool any_hit(const Ray& ray) const override;
  void query_range(const AABB& box,
                   std::vector<std::uint32_t>& out) const override;
  NearestResult nearest(const Vec3& point) const override;
  const AABB& bounds() const noexcept override { return bounds_; }
  std::span<const Triangle> triangles() const noexcept override {
    return triangles_;
  }
  TreeStats stats() const override;

  std::span<const Node> nodes() const noexcept { return nodes_; }

 private:
  void do_nearest_k(const Vec3& point, std::size_t k,
                    std::vector<NearestResult>& out,
                    float max_distance) const override;
  void nearest_core(const Vec3& point, KnnCollector& collector) const;

  std::vector<Triangle> triangles_;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> prim_indices_;
  AABB bounds_;
};

/// Builds a binned-SAH BVH. Node-level parallel (subtree tasks) when the pool
/// has workers, mirroring the kd-tree's node-level scheme.
std::unique_ptr<Bvh> build_bvh(std::span<const Triangle> tris,
                               const BvhConfig& config, ThreadPool& pool);

}  // namespace kdtune
