#include "render/raycaster.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>

#include "bvh/bvh.hpp"
#include "kdtree/compact_tree.hpp"
#include "kdtree/packet.hpp"
#include "kdtree/wide_tree.hpp"
#include "parallel/parallel_for.hpp"

namespace kdtune {

Vec3 shade_hit(const KdTreeBase& tree, const Scene& scene, const Ray& ray,
               const Hit& hit, const RenderOptions& opts,
               std::size_t* shadow_rays) {
  const Triangle& tri = tree.triangles()[hit.triangle];
  const Vec3 point = ray.at(hit.t);
  Vec3 normal = tri.normal();
  // Two-sided shading: flip the normal toward the viewer.
  if (dot(normal, ray.dir) > 0.0f) normal = -normal;

  Vec3 color = opts.ambient * opts.albedo;
  for (const PointLight& light : scene.lights()) {
    const Vec3 to_light = light.position - point;
    const float dist = length(to_light);
    if (dist <= 0.0f) continue;
    const Vec3 dir = to_light / dist;
    const float lambert = dot(normal, dir);
    if (lambert <= 0.0f) continue;

    if (opts.shadows) {
      // From the intersection point a shadow ray is cast to the light source
      // to determine the light's contribution (paper §V-A).
      const Ray shadow(point + normal * opts.shadow_bias, dir,
                       opts.shadow_bias, dist);
      if (shadow_rays != nullptr) ++*shadow_rays;
      if (tree.any_hit(shadow)) continue;
    }
    // Inverse-square falloff normalized to keep presets simple.
    const float atten = 1.0f / (1.0f + 0.02f * dist * dist);
    color += opts.albedo * light.intensity * (lambert * atten);
  }
  return color;
}

Vec3 pixel_color(const KdTreeBase& tree, const Scene& scene, const Ray& ray,
                 const Hit& hit, const RenderOptions& opts,
                 std::size_t* shadow_rays) {
  switch (opts.mode) {
    case RenderMode::kDepth:
      return Vec3(1.0f / (1.0f + hit.t * 0.15f));
    case RenderMode::kNormals: {
      Vec3 n = tree.triangles()[hit.triangle].normal();
      if (dot(n, ray.dir) > 0.0f) n = -n;
      return (n + Vec3(1.0f)) * 0.5f;
    }
    case RenderMode::kShaded:
      break;
  }
  return shade_hit(tree, scene, ray, hit, opts, shadow_rays);
}

RenderResult render(const KdTreeBase& tree_in, const Scene& scene,
                    const Camera& camera, Framebuffer& fb, ThreadPool& pool,
                    const RenderOptions& opts) {
  // Serving-layout fast path: re-emit an eager tree into the compact layout
  // once, up front, and trace everything through it. Lazy trees are left
  // alone — they must expand in place during traversal.
  std::shared_ptr<const KdTreeBase> serving;
  if (opts.use_compact) {
    if (const auto* eager = dynamic_cast<const KdTree*>(&tree_in)) {
      auto compacted = std::make_shared<const CompactKdTree>(*eager);
      switch (opts.backend) {
        case QueryBackend::kWide4:
        case QueryBackend::kWide8:
          serving = std::shared_ptr<const KdTreeBase>(
              make_wide_tree(compacted, opts.backend));
          break;
        case QueryBackend::kBvh:
          serving = std::shared_ptr<const KdTreeBase>(
              build_bvh(compacted->triangles(), BvhConfig{}, pool));
          break;
        case QueryBackend::kCompact:
          serving = compacted;
          break;
      }
    }
  }
  const KdTreeBase& tree = serving ? *serving : tree_in;

  std::atomic<std::size_t> shadow_total{0};
  std::atomic<std::size_t> hit_total{0};

  parallel_for_blocked(
      pool, 0, static_cast<std::size_t>(camera.height()), 1,
      [&](std::size_t y0, std::size_t y1) {
        std::size_t shadow_rays = 0;
        std::size_t hits = 0;
        std::vector<Ray> packet;
        std::vector<Hit> packet_hits;
        for (std::size_t y = y0; y < y1; ++y) {
          if (opts.use_packets) {
            // One row at a time in <=64-ray packets: adjacent pixels share
            // most of their traversal path.
            packet.clear();
            for (int x = 0; x < camera.width(); ++x) {
              packet.push_back(camera.primary_ray(x, static_cast<int>(y)));
            }
            packet_hits.assign(packet.size(), Hit{});
            closest_hit_packet_any(tree, packet, packet_hits);
            for (int x = 0; x < camera.width(); ++x) {
              const Hit& hit = packet_hits[static_cast<std::size_t>(x)];
              if (hit.valid()) {
                ++hits;
                fb.set(x, static_cast<int>(y),
                       pixel_color(tree, scene,
                                   packet[static_cast<std::size_t>(x)], hit,
                                   opts, &shadow_rays));
              } else {
                fb.set(x, static_cast<int>(y), opts.background);
              }
            }
            continue;
          }
          const int spa = std::max(1, opts.samples_per_axis);
          const float sub = 1.0f / static_cast<float>(spa);
          for (int x = 0; x < camera.width(); ++x) {
            if (spa == 1) {
              const Ray ray = camera.primary_ray(x, static_cast<int>(y));
              const Hit hit = tree.closest_hit(ray);
              if (hit.valid()) {
                ++hits;
                fb.set(x, static_cast<int>(y),
                       pixel_color(tree, scene, ray, hit, opts, &shadow_rays));
              } else {
                fb.set(x, static_cast<int>(y), opts.background);
              }
              continue;
            }
            // Supersampling: regular sub-pixel grid, box filter.
            Vec3 accum{0, 0, 0};
            bool any_hit_here = false;
            for (int sy = 0; sy < spa; ++sy) {
              for (int sx = 0; sx < spa; ++sx) {
                const Ray ray = camera.ray_at(
                    static_cast<float>(x) + (static_cast<float>(sx) + 0.5f) * sub,
                    static_cast<float>(y) + (static_cast<float>(sy) + 0.5f) * sub);
                const Hit hit = tree.closest_hit(ray);
                if (hit.valid()) {
                  any_hit_here = true;
                  accum += pixel_color(tree, scene, ray, hit, opts, &shadow_rays);
                } else {
                  accum += opts.background;
                }
              }
            }
            hits += any_hit_here;
            fb.set(x, static_cast<int>(y),
                   accum / static_cast<float>(spa * spa));
          }
        }
        shadow_total.fetch_add(shadow_rays, std::memory_order_relaxed);
        hit_total.fetch_add(hits, std::memory_order_relaxed);
      });

  RenderResult result;
  const int spa = opts.use_packets ? 1 : std::max(1, opts.samples_per_axis);
  result.rays_cast = static_cast<std::size_t>(camera.width()) *
                     camera.height() * spa * spa;
  result.shadow_rays = shadow_total.load();
  result.hits = hit_total.load();
  return result;
}

}  // namespace kdtune
