#pragma once

// Ray casting renderer (paper §V-A, after Appel 1968): one primary ray per
// pixel finds the first intersection through the kd-tree; one shadow ray per
// light decides its contribution; Lambertian shading. Rays are independent,
// so intersection testing parallelizes across pixels (rows are the grain).
// Traversal through a *lazy* tree expands deferred nodes on the fly — which
// is exactly how the lazy builder's construction cost shifts into rendering.

#include "kdtree/query_backend.hpp"
#include "kdtree/tree.hpp"
#include "parallel/thread_pool.hpp"
#include "render/camera.hpp"
#include "render/framebuffer.hpp"
#include "scene/scene.hpp"

namespace kdtune {

/// What the renderer writes per pixel: shaded color (the default), a
/// depth visualization (1/(1+t), white = near), or the geometric normal
/// mapped to RGB — the standard debugging AOVs.
enum class RenderMode { kShaded, kDepth, kNormals };

struct RenderOptions {
  RenderMode mode = RenderMode::kShaded;
  Vec3 background{0.05f, 0.06f, 0.08f};
  Vec3 albedo{0.75f, 0.73f, 0.7f};
  Vec3 ambient{0.06f, 0.06f, 0.07f};
  float shadow_bias = 1e-3f;
  bool shadows = true;
  /// Trace primary rays in coherent packets (eager trees only; identical
  /// results, fewer node visits on coherent camera rays).
  bool use_packets = false;
  /// Supersampling: samples_per_axis^2 primary rays per pixel on a regular
  /// sub-pixel grid, box-filtered. 1 = one centered ray (the default;
  /// deterministic either way).
  int samples_per_axis = 1;
  /// Re-emit eager (KdTree) input into the cache-compact serving layout
  /// (CompactKdTree) before rendering and route every query — primary,
  /// packet, shadow — through it. Identical results, fewer cache misses.
  /// Ignored for lazy trees (their nodes mutate during traversal).
  bool use_compact = true;
  /// Query backend the re-emitted tree serves from: the binary compact
  /// layout, a 4/8-wide collapse of it (SIMD child-slab tests), or a BVH
  /// over the same triangles. Requires use_compact on an eager input;
  /// identical hits either way (see docs/DESIGN.md on bit-parity).
  QueryBackend backend = QueryBackend::kCompact;
};

struct RenderResult {
  std::size_t rays_cast = 0;     ///< primary rays
  std::size_t shadow_rays = 0;
  std::size_t hits = 0;          ///< primary rays that hit geometry
};

/// Shades a single primary-ray hit (exposed for tests). Lambertian + shadow
/// rays; ignores opts.mode (render() dispatches on it).
Vec3 shade_hit(const KdTreeBase& tree, const Scene& scene, const Ray& ray,
               const Hit& hit, const RenderOptions& opts,
               std::size_t* shadow_rays);

/// Full per-pixel color for a hit under the configured RenderMode.
Vec3 pixel_color(const KdTreeBase& tree, const Scene& scene, const Ray& ray,
                 const Hit& hit, const RenderOptions& opts,
                 std::size_t* shadow_rays);

/// Renders `scene` through `tree` into `fb`, parallel across pixel rows.
RenderResult render(const KdTreeBase& tree, const Scene& scene,
                    const Camera& camera, Framebuffer& fb, ThreadPool& pool,
                    const RenderOptions& opts = {});

}  // namespace kdtune
