#pragma once

// RGB framebuffer with binary PPM output — enough to inspect the rendered
// scenes (the quickstart example writes one) and to checksum renders in
// tests.

#include <cstdint>
#include <string>
#include <vector>

#include "geom/vec3.hpp"

namespace kdtune {

class Framebuffer {
 public:
  Framebuffer(int width, int height)
      : width_(width), height_(height),
        pixels_(static_cast<std::size_t>(width) * height) {}

  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }

  /// Linear-space color; clamped to [0,1] at write-out.
  void set(int x, int y, const Vec3& color) noexcept {
    pixels_[static_cast<std::size_t>(y) * width_ + x] = color;
  }

  const Vec3& at(int x, int y) const noexcept {
    return pixels_[static_cast<std::size_t>(y) * width_ + x];
  }

  /// Sum of all channel values — a cheap order-independent checksum used by
  /// tests to compare renders across builders.
  double checksum() const noexcept;

  /// Binary PPM (P6), gamma 2.2.
  void save_ppm(const std::string& path) const;

 private:
  int width_;
  int height_;
  std::vector<Vec3> pixels_;
};

}  // namespace kdtune
