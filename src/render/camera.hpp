#pragma once

// Pinhole camera: generates one primary ray per pixel. The evaluation's ray
// caster (paper §V-A) needs nothing fancier — no lens, no jitter (rendering
// must be deterministic for the tuner's measurements to be comparable).

#include "geom/ray.hpp"
#include "geom/vec3.hpp"
#include "scene/scene.hpp"

namespace kdtune {

class Camera {
 public:
  Camera(const Vec3& eye, const Vec3& look_at, const Vec3& up,
         float vertical_fov_deg, int width, int height);

  /// Builds the camera from a scene's preset.
  Camera(const CameraPreset& preset, int width, int height)
      : Camera(preset.eye, preset.look_at, preset.up, preset.vertical_fov_deg,
               width, height) {}

  /// Primary ray through the center of pixel (x, y); (0, 0) is top-left.
  Ray primary_ray(int x, int y) const noexcept {
    return ray_at(static_cast<float>(x) + 0.5f, static_cast<float>(y) + 0.5f);
  }

  /// Ray through continuous pixel coordinates (sub-pixel positions for
  /// supersampling: px in [0, width), py in [0, height)).
  Ray ray_at(float px, float py) const noexcept;

  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }
  const Vec3& eye() const noexcept { return eye_; }

 private:
  Vec3 eye_;
  Vec3 forward_;
  Vec3 right_;
  Vec3 up_;
  float half_width_;   ///< tan(fov/2) * aspect
  float half_height_;  ///< tan(fov/2)
  int width_;
  int height_;
};

}  // namespace kdtune
