#include "render/framebuffer.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

namespace kdtune {

double Framebuffer::checksum() const noexcept {
  double sum = 0.0;
  for (const Vec3& p : pixels_) sum += p.x + p.y + p.z;
  return sum;
}

void Framebuffer::save_ppm(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  out << "P6\n" << width_ << ' ' << height_ << "\n255\n";
  const auto encode = [](float v) {
    const float clamped = std::clamp(v, 0.0f, 1.0f);
    const float srgb = std::pow(clamped, 1.0f / 2.2f);
    return static_cast<unsigned char>(std::lround(srgb * 255.0f));
  };
  std::vector<unsigned char> row(static_cast<std::size_t>(width_) * 3);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      const Vec3& p = at(x, y);
      row[3 * x + 0] = encode(p.x);
      row[3 * x + 1] = encode(p.y);
      row[3 * x + 2] = encode(p.z);
    }
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row.size()));
  }
}

}  // namespace kdtune
