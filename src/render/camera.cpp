#include "render/camera.hpp"

#include <cmath>
#include <numbers>

namespace kdtune {

Camera::Camera(const Vec3& eye, const Vec3& look_at, const Vec3& up,
               float vertical_fov_deg, int width, int height)
    : eye_(eye), width_(width), height_(height) {
  forward_ = normalized(look_at - eye);
  right_ = normalized(cross(forward_, up));
  up_ = cross(right_, forward_);
  const float fov_rad =
      vertical_fov_deg * std::numbers::pi_v<float> / 180.0f;
  half_height_ = std::tan(fov_rad * 0.5f);
  half_width_ = half_height_ * static_cast<float>(width) /
                static_cast<float>(height);
}

Ray Camera::ray_at(float px, float py) const noexcept {
  // NDC in [-1, 1], y flipped (image origin is top-left).
  const float u = (2.0f * px / static_cast<float>(width_)) - 1.0f;
  const float v = 1.0f - (2.0f * py / static_cast<float>(height_));
  const Vec3 dir = forward_ + right_ * (u * half_width_) + up_ * (v * half_height_);
  return Ray(eye_, normalized(dir));
}

}  // namespace kdtune
