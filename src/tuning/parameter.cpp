#include "tuning/parameter.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace kdtune {

TunableParameter::TunableParameter(std::int64_t* target, std::int64_t min,
                                   std::int64_t max, std::int64_t step,
                                   bool is_pow2, std::string name)
    : target_(target), min_(min), max_(max), step_(step), pow2_(is_pow2),
      name_(std::move(name)) {
  if (target == nullptr) throw std::invalid_argument("parameter: null target");
  if (max < min) throw std::invalid_argument("parameter: max < min");
  if (pow2_) {
    if (min <= 0 || (min & (min - 1)) != 0) {
      throw std::invalid_argument("parameter: pow2 min must be a power of two");
    }
    count_ = 0;
    for (std::int64_t v = min; v <= max; v *= 2) ++count_;
  } else {
    if (step <= 0) throw std::invalid_argument("parameter: step must be > 0");
    count_ = (max - min) / step + 1;
  }
}

TunableParameter TunableParameter::linear(std::int64_t* target,
                                          std::int64_t min, std::int64_t max,
                                          std::int64_t step, std::string name) {
  return TunableParameter(target, min, max, step, false, std::move(name));
}

TunableParameter TunableParameter::pow2(std::int64_t* target, std::int64_t min,
                                        std::int64_t max, std::string name) {
  return TunableParameter(target, min, max, 1, true, std::move(name));
}

std::int64_t TunableParameter::value_at(std::int64_t index) const {
  index = std::clamp<std::int64_t>(index, 0, count_ - 1);
  if (pow2_) return min_ << index;
  return min_ + index * step_;
}

std::int64_t TunableParameter::index_of(std::int64_t value) const noexcept {
  if (pow2_) {
    std::int64_t best = 0;
    std::int64_t best_err = std::numeric_limits<std::int64_t>::max();
    for (std::int64_t i = 0; i < count_; ++i) {
      const std::int64_t err = std::llabs((min_ << i) - value);
      if (err < best_err) {
        best_err = err;
        best = i;
      }
    }
    return best;
  }
  const std::int64_t clamped = std::clamp(value, min_, max_);
  return (clamped - min_ + step_ / 2) / step_;
}

std::int64_t TunableParameter::round_index(double x) const noexcept {
  const auto i = static_cast<std::int64_t>(std::llround(x));
  return std::clamp<std::int64_t>(i, 0, count_ - 1);
}

std::uint64_t search_space_size(const std::vector<TunableParameter>& params) {
  std::uint64_t total = 1;
  for (const TunableParameter& p : params) {
    total *= static_cast<std::uint64_t>(p.count());
  }
  return total;
}

}  // namespace kdtune
