#pragma once

// Persistent configuration cache. Online tuning pays for its search on every
// program run; caching the best configuration per *context* (scene, algorithm,
// machine, thread count — any string the client composes) lets the next run
// seed the search at yesterday's optimum and converge almost immediately,
// while the online search still corrects for whatever changed.
//
// Storage is a human-readable line format:
//   <key>\t<seconds>\t<v0,v1,...>

#include <istream>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "tuning/parameter.hpp"

namespace kdtune {

class ConfigCache {
 public:
  struct Entry {
    std::vector<std::int64_t> values;
    double seconds = 0.0;
  };

  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }
  void clear() { entries_.clear(); }

  /// The cached best for `key`, if any.
  std::optional<Entry> lookup(const std::string& key) const;

  /// Records `values` for `key` if it is new or faster than the cached entry.
  /// Returns true if the cache changed.
  bool store(const std::string& key, std::vector<std::int64_t> values,
             double seconds);

  /// Seconds are written with max_digits10, so save→load round-trips are
  /// bit-exact (the keeps-if-faster comparison in store() depends on it).
  void save(std::ostream& out) const;
  void load(std::istream& in);  ///< merges (keeps faster of duplicates)

  /// Writes atomically: temp file in the same directory + rename, so a
  /// crash mid-save cannot leave a truncated cache behind.
  void save_file(const std::string& path) const;
  /// Missing files are treated as an empty cache. Unreadable or corrupt
  /// files log a warning to stderr and load nothing (a cold start) — a
  /// crashed writer must never take service startup down with it.
  void load_file(const std::string& path);

  /// Canonical key for the kd-tree use case:
  ///   scene/algorithm/threads=N/backend=B/hw=H
  /// `backend` is the serving query backend the configuration was measured
  /// under and `hw_suffix` a host identity (HardwareDescriptor::suffix()) —
  /// without them, optima measured under different layouts or on different
  /// hosts collide on one key and silently warm-start each other.
  static std::string key_for(const std::string& scene,
                             const std::string& algorithm, unsigned threads,
                             const std::string& backend,
                             const std::string& hw_suffix);

  /// The pre-database key format (scene/algorithm/threads=N), still what
  /// old cache files contain. New code writes the canonical format and
  /// back-reads this one via lookup_compat().
  static std::string key_for(const std::string& scene,
                             const std::string& algorithm, unsigned threads);

  /// Migration lookup: the canonical `key` first, then `legacy_key` — a
  /// cache written before the key format grew backend/hardware components
  /// keeps warm-starting until its entries are rewritten in place.
  std::optional<Entry> lookup_compat(const std::string& key,
                                     const std::string& legacy_key) const;

 private:
  std::map<std::string, Entry> entries_;
};

}  // namespace kdtune
