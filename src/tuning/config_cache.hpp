#pragma once

// Persistent configuration cache. Online tuning pays for its search on every
// program run; caching the best configuration per *context* (scene, algorithm,
// machine, thread count — any string the client composes) lets the next run
// seed the search at yesterday's optimum and converge almost immediately,
// while the online search still corrects for whatever changed.
//
// Storage is a human-readable line format:
//   <key>\t<seconds>\t<v0,v1,...>

#include <istream>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "tuning/parameter.hpp"

namespace kdtune {

class ConfigCache {
 public:
  struct Entry {
    std::vector<std::int64_t> values;
    double seconds = 0.0;
  };

  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }
  void clear() { entries_.clear(); }

  /// The cached best for `key`, if any.
  std::optional<Entry> lookup(const std::string& key) const;

  /// Records `values` for `key` if it is new or faster than the cached entry.
  /// Returns true if the cache changed.
  bool store(const std::string& key, std::vector<std::int64_t> values,
             double seconds);

  /// Seconds are written with max_digits10, so save→load round-trips are
  /// bit-exact (the keeps-if-faster comparison in store() depends on it).
  void save(std::ostream& out) const;
  void load(std::istream& in);  ///< merges (keeps faster of duplicates)

  /// Writes atomically: temp file in the same directory + rename, so a
  /// crash mid-save cannot leave a truncated cache behind.
  void save_file(const std::string& path) const;
  /// Missing files are treated as an empty cache. Unreadable or corrupt
  /// files log a warning to stderr and load nothing (a cold start) — a
  /// crashed writer must never take service startup down with it.
  void load_file(const std::string& path);

  /// Canonical key for the kd-tree use case.
  static std::string key_for(const std::string& scene,
                             const std::string& algorithm, unsigned threads);

 private:
  std::map<std::string, Entry> entries_;
};

}  // namespace kdtune
