// Random-sampling-seeded Nelder-Mead simplex search (Nelder & Mead 1965), the
// production strategy of AtuneRT. The search runs on a continuous relaxation
// of the integer index space; every proposal is rounded to the grid for
// evaluation. Because measurements arrive one at a time from the client's
// start/stop cycles, the algorithm is written as an explicit state machine
// (propose -> report -> advance).

#include <algorithm>
#include <cmath>

#include "geom/rng.hpp"
#include "tuning/search.hpp"

namespace kdtune {

namespace {

class NelderMeadSearch final : public SearchStrategy {
 public:
  explicit NelderMeadSearch(NelderMeadOptions opts)
      : opts_(opts), rng_(opts.seed) {}

  void initialize(std::vector<std::int64_t> dimension_sizes) override {
    sizes_ = std::move(dimension_sizes);
    dims_ = sizes_.size();
    restart_clean();
  }

  ConfigPoint propose() override {
    switch (phase_) {
      case Phase::kSampling: {
        pending_.assign(dims_, 0.0);
        if (samples_.empty() && !best_point_.empty()) {
          // Re-tuning restart: seed with the best known configuration.
          for (std::size_t d = 0; d < dims_; ++d) {
            pending_[d] = static_cast<double>(best_point_[d]);
          }
        } else {
          for (std::size_t d = 0; d < dims_; ++d) {
            pending_[d] =
                rng_.next_double() * static_cast<double>(sizes_[d] - 1);
          }
        }
        break;
      }
      case Phase::kReflect:
        pending_ = affine(centroid(), worst().x, -opts_.alpha);
        break;
      case Phase::kExpand:
        pending_ = affine(centroid(), reflected_.x, opts_.gamma);
        break;
      case Phase::kContract:
        pending_ = contract_outside_
                       ? affine(centroid(), reflected_.x, opts_.rho)
                       : affine(centroid(), worst().x, opts_.rho);
        break;
      case Phase::kShrink: {
        const auto& x0 = simplex_[0].x;
        const auto& xi = simplex_[shrink_index_].x;
        pending_.resize(dims_);
        for (std::size_t d = 0; d < dims_; ++d) {
          pending_[d] = x0[d] + opts_.sigma * (xi[d] - x0[d]);
        }
        break;
      }
      case Phase::kConverged:
        return best_point_.empty() ? ConfigPoint(dims_, 0) : best_point_;
    }
    clamp(pending_);
    return to_grid(pending_);
  }

  void report(double seconds) override {
    if (phase_ == Phase::kConverged) return;
    ++evaluations_;
    track_best(pending_, seconds);

    switch (phase_) {
      case Phase::kSampling: {
        samples_.push_back({pending_, seconds});
        const std::size_t need = std::max(opts_.random_samples, dims_ + 1);
        if (samples_.size() >= need) seed_simplex();
        break;
      }
      case Phase::kReflect: {
        const Vertex r{pending_, seconds};
        if (r.f < simplex_.front().f) {
          reflected_ = r;
          phase_ = Phase::kExpand;
        } else if (r.f < simplex_[dims_ - 1].f) {
          replace_worst(r);
        } else {
          reflected_ = r;
          contract_outside_ = r.f < worst().f;
          phase_ = Phase::kContract;
        }
        break;
      }
      case Phase::kExpand: {
        const Vertex e{pending_, seconds};
        replace_worst(e.f < reflected_.f ? e : reflected_);
        break;
      }
      case Phase::kContract: {
        const Vertex c{pending_, seconds};
        const bool accept = contract_outside_ ? c.f <= reflected_.f
                                              : c.f < worst().f;
        if (accept) {
          replace_worst(c);
        } else {
          shrink_index_ = 1;
          phase_ = Phase::kShrink;
        }
        break;
      }
      case Phase::kShrink: {
        simplex_[shrink_index_] = {pending_, seconds};
        if (++shrink_index_ > dims_) {
          sort_simplex();
          phase_ = Phase::kReflect;
          check_convergence();
        }
        break;
      }
      case Phase::kConverged:
        break;
    }

    if (phase_ != Phase::kConverged && evaluations_ >= opts_.max_evaluations) {
      phase_ = Phase::kConverged;
    }
  }

  bool converged() const noexcept override { return phase_ == Phase::kConverged; }
  const ConfigPoint& best() const noexcept override { return best_point_; }
  double best_time() const noexcept override { return best_time_; }

  void restart() override {
    // Keep best_point_/best_time_ as the seed and global reference.
    samples_.clear();
    simplex_.clear();
    evaluations_ = 0;
    phase_ = Phase::kSampling;
  }

  void seed(const ConfigPoint& point) override {
    // A warm start behaves like a remembered best with no measurement yet:
    // the first sampling proposal is the seed, and any real measurement that
    // beats infinity replaces it as best.
    if (point.size() != dims_) return;
    best_point_ = point;
    for (std::size_t d = 0; d < dims_; ++d) {
      best_point_[d] = std::clamp<std::int64_t>(point[d], 0, sizes_[d] - 1);
    }
  }

 private:
  enum class Phase { kSampling, kReflect, kExpand, kContract, kShrink, kConverged };

  struct Vertex {
    std::vector<double> x;
    double f = std::numeric_limits<double>::infinity();
  };

  void restart_clean() {
    best_point_.clear();
    best_time_ = std::numeric_limits<double>::infinity();
    restart();
  }

  std::vector<double> centroid() const {
    std::vector<double> c(dims_, 0.0);
    for (std::size_t v = 0; v < dims_; ++v) {  // all but the worst
      for (std::size_t d = 0; d < dims_; ++d) c[d] += simplex_[v].x[d];
    }
    for (double& e : c) e /= static_cast<double>(dims_);
    return c;
  }

  /// c + t * (p - c): t = -alpha reflects p through c, t > 0 moves toward p.
  std::vector<double> affine(const std::vector<double>& c,
                             const std::vector<double>& p, double t) const {
    std::vector<double> out(dims_);
    for (std::size_t d = 0; d < dims_; ++d) out[d] = c[d] + t * (p[d] - c[d]);
    return out;
  }

  const Vertex& worst() const { return simplex_.back(); }

  void clamp(std::vector<double>& x) const {
    for (std::size_t d = 0; d < dims_; ++d) {
      x[d] = std::clamp(x[d], 0.0, static_cast<double>(sizes_[d] - 1));
    }
  }

  ConfigPoint to_grid(const std::vector<double>& x) const {
    ConfigPoint p(dims_);
    for (std::size_t d = 0; d < dims_; ++d) {
      p[d] = std::clamp<std::int64_t>(
          static_cast<std::int64_t>(std::llround(x[d])), 0, sizes_[d] - 1);
    }
    return p;
  }

  void track_best(const std::vector<double>& x, double f) {
    if (f < best_time_) {
      best_time_ = f;
      best_point_ = to_grid(x);
    }
  }

  void seed_simplex() {
    std::sort(samples_.begin(), samples_.end(),
              [](const Vertex& a, const Vertex& b) { return a.f < b.f; });
    simplex_.assign(samples_.begin(), samples_.begin() + dims_ + 1);
    samples_.clear();
    phase_ = Phase::kReflect;
    check_convergence();
  }

  void replace_worst(Vertex v) {
    simplex_.back() = std::move(v);
    sort_simplex();
    check_convergence();
  }

  void sort_simplex() {
    std::sort(simplex_.begin(), simplex_.end(),
              [](const Vertex& a, const Vertex& b) { return a.f < b.f; });
  }

  void check_convergence() {
    double diameter = 0.0;
    for (const Vertex& v : simplex_) {
      for (std::size_t d = 0; d < dims_; ++d) {
        diameter = std::max(diameter, std::fabs(v.x[d] - simplex_[0].x[d]));
      }
    }
    const double f0 = simplex_.front().f;
    const double fn = simplex_.back().f;
    const double spread = std::fabs(fn - f0) / std::max(std::fabs(f0), 1e-12);
    if (diameter < opts_.position_tolerance || spread < opts_.value_tolerance) {
      phase_ = Phase::kConverged;
    }
  }

  NelderMeadOptions opts_;
  Rng rng_;
  std::vector<std::int64_t> sizes_;
  std::size_t dims_ = 0;

  Phase phase_ = Phase::kSampling;
  std::vector<Vertex> samples_;
  std::vector<Vertex> simplex_;
  std::vector<double> pending_;
  Vertex reflected_;
  bool contract_outside_ = false;
  std::size_t shrink_index_ = 1;
  std::size_t evaluations_ = 0;

  ConfigPoint best_point_;
  double best_time_ = std::numeric_limits<double>::infinity();
};

}  // namespace

std::unique_ptr<SearchStrategy> make_nelder_mead_search(NelderMeadOptions opts) {
  return std::make_unique<NelderMeadSearch>(opts);
}

}  // namespace kdtune
