#include "tuning/config_cache.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace kdtune {

std::optional<ConfigCache::Entry> ConfigCache::lookup(
    const std::string& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

bool ConfigCache::store(const std::string& key,
                        std::vector<std::int64_t> values, double seconds) {
  if (key.find('\t') != std::string::npos ||
      key.find('\n') != std::string::npos) {
    throw std::invalid_argument("ConfigCache: key must not contain tab/newline");
  }
  const auto it = entries_.find(key);
  if (it != entries_.end() && it->second.seconds <= seconds) return false;
  entries_[key] = {std::move(values), seconds};
  return true;
}

void ConfigCache::save(std::ostream& out) const {
  for (const auto& [key, entry] : entries_) {
    out << key << '\t' << entry.seconds << '\t';
    for (std::size_t i = 0; i < entry.values.size(); ++i) {
      if (i > 0) out << ',';
      out << entry.values[i];
    }
    out << '\n';
  }
}

void ConfigCache::load(std::istream& in) {
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::size_t tab1 = line.find('\t');
    const std::size_t tab2 =
        tab1 == std::string::npos ? std::string::npos : line.find('\t', tab1 + 1);
    if (tab2 == std::string::npos) {
      throw std::runtime_error("ConfigCache: malformed line " +
                               std::to_string(line_no));
    }
    Entry entry;
    const std::string key = line.substr(0, tab1);
    try {
      entry.seconds = std::stod(line.substr(tab1 + 1, tab2 - tab1 - 1));
      std::stringstream values(line.substr(tab2 + 1));
      std::string token;
      while (std::getline(values, token, ',')) {
        entry.values.push_back(std::stoll(token));
      }
    } catch (const std::logic_error&) {
      throw std::runtime_error("ConfigCache: malformed line " +
                               std::to_string(line_no));
    }
    if (key.empty() || entry.values.empty()) {
      throw std::runtime_error("ConfigCache: malformed line " +
                               std::to_string(line_no));
    }
    store(key, std::move(entry.values), entry.seconds);
  }
}

void ConfigCache::save_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("ConfigCache: cannot write " + path);
  save(out);
}

void ConfigCache::load_file(const std::string& path) {
  if (!std::filesystem::exists(path)) return;  // first run: empty cache
  std::ifstream in(path);
  if (!in) throw std::runtime_error("ConfigCache: cannot read " + path);
  load(in);
}

std::string ConfigCache::key_for(const std::string& scene,
                                 const std::string& algorithm,
                                 unsigned threads) {
  return scene + "/" + algorithm + "/threads=" + std::to_string(threads);
}

}  // namespace kdtune
