#include "tuning/config_cache.hpp"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace kdtune {

std::optional<ConfigCache::Entry> ConfigCache::lookup(
    const std::string& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

bool ConfigCache::store(const std::string& key,
                        std::vector<std::int64_t> values, double seconds) {
  if (key.find('\t') != std::string::npos ||
      key.find('\n') != std::string::npos) {
    throw std::invalid_argument("ConfigCache: key must not contain tab/newline");
  }
  const auto it = entries_.find(key);
  if (it != entries_.end() && it->second.seconds <= seconds) return false;
  entries_[key] = {std::move(values), seconds};
  return true;
}

void ConfigCache::save(std::ostream& out) const {
  // max_digits10 makes the seconds round-trip bit-exact through stod().
  // At the default 6-digit precision a reloaded "best" differs from the
  // in-memory one in the low bits, so store()'s keeps-if-faster
  // comparison could flip against the very entry it was saved from.
  const std::streamsize old_precision =
      out.precision(std::numeric_limits<double>::max_digits10);
  for (const auto& [key, entry] : entries_) {
    out << key << '\t' << entry.seconds << '\t';
    for (std::size_t i = 0; i < entry.values.size(); ++i) {
      if (i > 0) out << ',';
      out << entry.values[i];
    }
    out << '\n';
  }
  out.precision(old_precision);
}

void ConfigCache::load(std::istream& in) {
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::size_t tab1 = line.find('\t');
    const std::size_t tab2 =
        tab1 == std::string::npos ? std::string::npos : line.find('\t', tab1 + 1);
    if (tab2 == std::string::npos) {
      throw std::runtime_error("ConfigCache: malformed line " +
                               std::to_string(line_no));
    }
    Entry entry;
    const std::string key = line.substr(0, tab1);
    try {
      entry.seconds = std::stod(line.substr(tab1 + 1, tab2 - tab1 - 1));
      std::stringstream values(line.substr(tab2 + 1));
      std::string token;
      while (std::getline(values, token, ',')) {
        entry.values.push_back(std::stoll(token));
      }
    } catch (const std::logic_error&) {
      throw std::runtime_error("ConfigCache: malformed line " +
                               std::to_string(line_no));
    }
    if (key.empty() || entry.values.empty()) {
      throw std::runtime_error("ConfigCache: malformed line " +
                               std::to_string(line_no));
    }
    store(key, std::move(entry.values), entry.seconds);
  }
}

void ConfigCache::save_file(const std::string& path) const {
  // Write-to-temp + rename so readers never observe a half-written cache:
  // a crash mid-save leaves the previous cache intact, and the rename is
  // atomic on POSIX filesystems. The counter keeps concurrent savers in
  // one process off each other's temp file; cross-process savers still
  // race benignly (last complete rename wins).
  namespace fs = std::filesystem;
  static std::atomic<unsigned> save_serial{0};
  const fs::path target(path);
  fs::path tmp(target);
  tmp += ".tmp" + std::to_string(save_serial.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      throw std::runtime_error("ConfigCache: cannot write " + tmp.string());
    }
    save(out);
    out.flush();
    if (!out) {
      std::error_code ec;
      fs::remove(tmp, ec);
      throw std::runtime_error("ConfigCache: write failed for " +
                               tmp.string());
    }
  }
  std::error_code ec;
  fs::rename(tmp, target, ec);
  if (ec) {
    std::error_code ignored;
    fs::remove(tmp, ignored);
    throw std::runtime_error("ConfigCache: cannot replace " + path + ": " +
                             ec.message());
  }
}

void ConfigCache::load_file(const std::string& path) {
  // A warm start is an optimisation, never a dependency: anything wrong
  // with the cache file degrades to a warned cold start instead of
  // throwing out of service startup. (The stream-level load() stays
  // strict so tests and tools that own their input still see errors.)
  if (!std::filesystem::exists(path)) return;  // first run: empty cache
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr,
                 "ConfigCache: cannot read %s; starting cold\n", path.c_str());
    return;
  }
  ConfigCache incoming;
  try {
    incoming.load(in);
  } catch (const std::exception& e) {
    std::fprintf(stderr,
                 "ConfigCache: ignoring corrupt cache %s (%s); starting cold\n",
                 path.c_str(), e.what());
    return;
  }
  for (auto& [key, entry] : incoming.entries_) {
    store(key, std::move(entry.values), entry.seconds);
  }
}

std::string ConfigCache::key_for(const std::string& scene,
                                 const std::string& algorithm,
                                 unsigned threads) {
  return scene + "/" + algorithm + "/threads=" + std::to_string(threads);
}

std::string ConfigCache::key_for(const std::string& scene,
                                 const std::string& algorithm,
                                 unsigned threads, const std::string& backend,
                                 const std::string& hw_suffix) {
  return key_for(scene, algorithm, threads) + "/backend=" + backend +
         "/hw=" + hw_suffix;
}

std::optional<ConfigCache::Entry> ConfigCache::lookup_compat(
    const std::string& key, const std::string& legacy_key) const {
  if (auto hit = lookup(key)) return hit;
  return lookup(legacy_key);
}

}  // namespace kdtune
