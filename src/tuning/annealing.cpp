// Simulated annealing: probabilistic local search that accepts worsening
// moves with temperature-decaying probability — the standard remedy for the
// local minima the paper observes trapping Nelder-Mead (SV-D4). Included as
// a further baseline for the strategy-comparison ablation: in noisy online
// settings its acceptance test is measurement-noise tolerant but it needs
// more evaluations than the simplex to get close.

#include <algorithm>
#include <cmath>
#include <limits>

#include "geom/rng.hpp"
#include "tuning/search.hpp"

namespace kdtune {

namespace {

class AnnealingSearch final : public SearchStrategy {
 public:
  AnnealingSearch(AnnealingOptions opts) : opts_(opts), rng_(opts.seed) {}

  void initialize(std::vector<std::int64_t> dimension_sizes) override {
    sizes_ = std::move(dimension_sizes);
    best_point_.assign(sizes_.size(), 0);
    best_time_ = std::numeric_limits<double>::infinity();
    seeded_ = false;
    restart();
  }

  ConfigPoint propose() override {
    if (converged_) return best_point_;
    if (!have_current_) return current_;
    pending_ = perturb(current_);
    return pending_;
  }

  void report(double seconds) override {
    if (converged_) return;
    ++evaluations_;

    if (!have_current_) {
      current_value_ = seconds;
      have_current_ = true;
      track_best(current_, seconds);
    } else {
      track_best(pending_, seconds);
      // Metropolis acceptance on relative slowdown.
      const double delta =
          (seconds - current_value_) / std::max(current_value_, 1e-12);
      if (delta <= 0.0 ||
          rng_.next_double() < std::exp(-delta / temperature_)) {
        current_ = pending_;
        current_value_ = seconds;
      }
      temperature_ *= opts_.cooling;
    }

    if (temperature_ < opts_.final_temperature ||
        evaluations_ >= opts_.max_evaluations) {
      converged_ = true;
    }
  }

  bool converged() const noexcept override { return converged_; }
  const ConfigPoint& best() const noexcept override { return best_point_; }
  double best_time() const noexcept override { return best_time_; }

  void restart() override {
    converged_ = false;
    evaluations_ = 0;
    temperature_ = opts_.initial_temperature;
    have_current_ = false;
    current_.resize(sizes_.size());
    if (seeded_) {
      current_ = best_point_;  // re-tune: restart from the best known point
    } else {
      for (std::size_t d = 0; d < sizes_.size(); ++d) {
        current_[d] = rng_.next_int(0, sizes_[d] - 1);
      }
    }
  }

  void seed(const ConfigPoint& point) override {
    if (point.size() != sizes_.size()) return;
    current_ = point;
    for (std::size_t d = 0; d < sizes_.size(); ++d) {
      current_[d] = std::clamp<std::int64_t>(point[d], 0, sizes_[d] - 1);
    }
    best_point_ = current_;
    seeded_ = true;
  }

 private:
  ConfigPoint perturb(const ConfigPoint& from) {
    // Step size shrinks with temperature: wide exploration early, local
    // refinement late.
    ConfigPoint p = from;
    const std::size_t d = static_cast<std::size_t>(
        rng_.next_int(0, static_cast<std::int64_t>(sizes_.size()) - 1));
    const double scale =
        std::max(1.0, static_cast<double>(sizes_[d] - 1) * temperature_ * 0.5);
    const std::int64_t step = rng_.next_int(
        1, std::max<std::int64_t>(1, static_cast<std::int64_t>(scale)));
    p[d] += rng_.next_float() < 0.5f ? -step : step;
    p[d] = std::clamp<std::int64_t>(p[d], 0, sizes_[d] - 1);
    if (p == from && sizes_[d] > 1) {
      p[d] = p[d] == 0 ? 1 : p[d] - 1;  // guarantee movement
    }
    return p;
  }

  void track_best(const ConfigPoint& p, double t) {
    if (t < best_time_) {
      best_time_ = t;
      best_point_ = p;
    }
  }

  AnnealingOptions opts_;
  Rng rng_;
  std::vector<std::int64_t> sizes_;

  double temperature_ = 1.0;
  ConfigPoint current_;
  double current_value_ = 0.0;
  bool have_current_ = false;
  ConfigPoint pending_;
  std::size_t evaluations_ = 0;
  bool converged_ = false;
  bool seeded_ = false;

  ConfigPoint best_point_;
  double best_time_ = std::numeric_limits<double>::infinity();
};

}  // namespace

std::unique_ptr<SearchStrategy> make_annealing_search(AnnealingOptions opts) {
  return std::make_unique<AnnealingSearch>(opts);
}

}  // namespace kdtune
