#include "tuning/measurement.hpp"

#include <algorithm>
#include <cmath>

namespace kdtune {

double sorted_quantile(std::span<const double> sorted, double q) noexcept {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

SampleStats compute_stats(std::span<const double> values) {
  SampleStats s;
  s.count = values.size();
  if (values.empty()) return s;

  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());

  double sum = 0.0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(sorted.size());

  double var = 0.0;
  for (double v : sorted) var += (v - s.mean) * (v - s.mean);
  s.stddev = sorted.size() > 1
                 ? std::sqrt(var / static_cast<double>(sorted.size() - 1))
                 : 0.0;

  s.min = sorted.front();
  s.max = sorted.back();
  s.q1 = sorted_quantile(sorted, 0.25);
  s.median = sorted_quantile(sorted, 0.5);
  s.q3 = sorted_quantile(sorted, 0.75);

  std::vector<double> dev(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    dev[i] = std::fabs(sorted[i] - s.median);
  }
  std::sort(dev.begin(), dev.end());
  s.mad = sorted_quantile(dev, 0.5);
  return s;
}

}  // namespace kdtune
