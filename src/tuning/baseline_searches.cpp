// Baseline strategies for the search-quality comparison (paper Fig. 9):
// exhaustive enumeration of a (possibly coarsened) grid, uniform random
// search with a fixed budget, and a pinned configuration (the default
// C_base that tuned results are compared against).

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "geom/rng.hpp"
#include "tuning/search.hpp"

namespace kdtune {

namespace {

class RandomSearch final : public SearchStrategy {
 public:
  RandomSearch(std::size_t budget, std::uint64_t seed)
      : budget_(budget), rng_(seed) {}

  void initialize(std::vector<std::int64_t> dimension_sizes) override {
    sizes_ = std::move(dimension_sizes);
    evaluations_ = 0;
    best_point_.assign(sizes_.size(), 0);
    best_time_ = std::numeric_limits<double>::infinity();
  }

  ConfigPoint propose() override {
    if (converged()) return best_point_;
    pending_.resize(sizes_.size());
    for (std::size_t d = 0; d < sizes_.size(); ++d) {
      pending_[d] = rng_.next_int(0, sizes_[d] - 1);
    }
    return pending_;
  }

  void report(double seconds) override {
    if (converged()) return;
    ++evaluations_;
    if (seconds < best_time_) {
      best_time_ = seconds;
      best_point_ = pending_;
    }
  }

  bool converged() const noexcept override { return evaluations_ >= budget_; }
  const ConfigPoint& best() const noexcept override { return best_point_; }
  double best_time() const noexcept override { return best_time_; }
  void restart() override { evaluations_ = 0; }

 private:
  std::size_t budget_;
  Rng rng_;
  std::vector<std::int64_t> sizes_;
  std::size_t evaluations_ = 0;
  ConfigPoint pending_;
  ConfigPoint best_point_;
  double best_time_ = std::numeric_limits<double>::infinity();
};

class ExhaustiveSearch final : public SearchStrategy {
 public:
  explicit ExhaustiveSearch(std::vector<std::int64_t> strides)
      : strides_(std::move(strides)) {}

  void initialize(std::vector<std::int64_t> dimension_sizes) override {
    sizes_ = std::move(dimension_sizes);
    if (strides_.empty()) strides_.assign(sizes_.size(), 1);
    if (strides_.size() != sizes_.size()) {
      throw std::invalid_argument("exhaustive: stride/dimension mismatch");
    }
    for (std::int64_t s : strides_) {
      if (s <= 0) throw std::invalid_argument("exhaustive: stride must be > 0");
    }
    cursor_.assign(sizes_.size(), 0);
    done_ = sizes_.empty();
    best_point_.assign(sizes_.size(), 0);
    best_time_ = std::numeric_limits<double>::infinity();
  }

  ConfigPoint propose() override { return done_ ? best_point_ : cursor_; }

  void report(double seconds) override {
    if (done_) return;
    if (seconds < best_time_) {
      best_time_ = seconds;
      best_point_ = cursor_;
    }
    // Odometer increment with per-dimension stride.
    for (std::size_t d = 0;; ++d) {
      if (d == sizes_.size()) {
        done_ = true;
        break;
      }
      cursor_[d] += strides_[d];
      if (cursor_[d] < sizes_[d]) break;
      cursor_[d] = 0;
    }
  }

  bool converged() const noexcept override { return done_; }
  const ConfigPoint& best() const noexcept override { return best_point_; }
  double best_time() const noexcept override { return best_time_; }

  void restart() override {
    cursor_.assign(sizes_.size(), 0);
    done_ = sizes_.empty();
  }

 private:
  std::vector<std::int64_t> strides_;
  std::vector<std::int64_t> sizes_;
  ConfigPoint cursor_;
  bool done_ = false;
  ConfigPoint best_point_;
  double best_time_ = std::numeric_limits<double>::infinity();
};

class FixedSearch final : public SearchStrategy {
 public:
  explicit FixedSearch(ConfigPoint point) : point_(std::move(point)) {}

  void initialize(std::vector<std::int64_t> dimension_sizes) override {
    if (point_.size() != dimension_sizes.size()) {
      throw std::invalid_argument("fixed search: wrong dimension count");
    }
    for (std::size_t d = 0; d < point_.size(); ++d) {
      point_[d] = std::clamp<std::int64_t>(point_[d], 0, dimension_sizes[d] - 1);
    }
  }

  ConfigPoint propose() override { return point_; }

  void report(double seconds) override {
    best_time_ = std::min(best_time_, seconds);
  }

  bool converged() const noexcept override { return true; }
  const ConfigPoint& best() const noexcept override { return point_; }
  double best_time() const noexcept override { return best_time_; }
  void restart() override {}

 private:
  ConfigPoint point_;
  double best_time_ = std::numeric_limits<double>::infinity();
};

}  // namespace

std::unique_ptr<SearchStrategy> make_random_search(std::size_t budget,
                                                   std::uint64_t seed) {
  return std::make_unique<RandomSearch>(budget, seed);
}

std::unique_ptr<SearchStrategy> make_exhaustive_search(
    std::vector<std::int64_t> strides) {
  return std::make_unique<ExhaustiveSearch>(std::move(strides));
}

std::unique_ptr<SearchStrategy> make_fixed_search(ConfigPoint point) {
  return std::make_unique<FixedSearch>(std::move(point));
}

}  // namespace kdtune
