#pragma once

// The online autotuner — a reimplementation of AtuneRT (paper §III-A).
// Client workflow (paper fig. 1):
//
//   Tuner tuner;
//   tuner.register_parameter(&n_threads, 1, 32);
//   while (work_to_do) {
//     tuner.start();          // begin measurement cycle
//     do_work();              // uses the registered variables
//     tuner.stop();           // end cycle; tuner writes the next
//   }                         // configuration into the variables
//
// The tuner communicates with the client purely through the registered
// variables ("shared memory" in the paper's phrasing) plus start/stop. After
// the search converges it keeps monitoring the measurements of the chosen
// configuration; if performance drifts (scene change, system load), the
// search restarts from the best known point — this is what makes the tuning
// *online*.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tuning/measurement.hpp"
#include "tuning/parameter.hpp"
#include "tuning/search.hpp"

namespace kdtune {

class TunerLog;

struct TunerOptions {
  /// Relative slowdown of the converged configuration (vs. its best observed
  /// time) that triggers a re-tune. <= 0 disables online re-tuning.
  double drift_threshold = 0.5;
  /// Number of recent converged-phase measurements the drift check medians.
  std::size_t drift_window = 8;
  /// Keep the full measurement history (benchmarks read it; long-running
  /// applications may turn it off).
  bool keep_history = true;
};

struct MeasurementRecord {
  ConfigPoint point;                 ///< index-space configuration measured
  std::vector<std::int64_t> values;  ///< parameter values of that point
  double seconds = 0.0;
  bool after_convergence = false;
};

class Tuner {
 public:
  /// `strategy` defaults to random-sampling-seeded Nelder-Mead.
  explicit Tuner(std::unique_ptr<SearchStrategy> strategy = nullptr,
                 TunerOptions opts = {});
  ~Tuner();

  Tuner(const Tuner&) = delete;
  Tuner& operator=(const Tuner&) = delete;

  /// RegisterParameter(&N, min, max, step): tune *var over the linear grid
  /// {min, min+step, ..., max}. Must be called before the first start().
  void register_parameter(std::int64_t* var, std::int64_t min,
                          std::int64_t max, std::int64_t step = 1,
                          std::string name = {});

  /// Power-of-two grid {min, 2min, ..., max} (the lazy R parameter).
  void register_parameter_pow2(std::int64_t* var, std::int64_t min,
                               std::int64_t max, std::string name = {});

  /// Seeds the search with known-good parameter *values* (e.g. from a
  /// ConfigCache of a previous run). Call after registering all parameters
  /// and before the first start()/apply_next().
  void warm_start(const std::vector<std::int64_t>& values);

  /// Starts a measurement cycle: applies the configuration under test to the
  /// registered variables and starts the clock.
  void start();

  /// Ends the cycle: reports the elapsed time to the search and writes the
  /// *next* configuration into the registered variables.
  void stop();

  /// Manual-measurement alternative to start()/stop() for synthetic cost
  /// functions (tests, simulation benches): apply_next() writes the next
  /// configuration, record() reports its cost.
  void apply_next();
  void record(double seconds);

  std::size_t parameter_count() const noexcept { return params_.size(); }
  const std::vector<TunableParameter>& parameters() const noexcept {
    return params_;
  }

  std::size_t iterations() const noexcept { return iterations_; }
  bool converged() const noexcept;
  std::size_t retune_count() const noexcept { return retunes_; }

  /// Measurements rejected because they were NaN/Inf (the configuration under
  /// test stays applied and is re-measured on the next cycle).
  std::size_t rejected_samples() const noexcept { return rejected_samples_; }

  /// Best configuration found so far, as parameter *values*.
  std::vector<std::int64_t> best_values() const;
  double best_time() const noexcept;

  const std::vector<MeasurementRecord>& history() const noexcept {
    return history_;
  }

  /// Forces a search restart (seeded from the best known configuration).
  void retune();

  /// Attaches a decision log: every record() (and retune()) appends one
  /// JSONL line under `name`. The log must outlive the tuner; nullptr
  /// detaches. Several tuners can share one log.
  void set_log(TunerLog* log, std::string name = "tuner");

 private:
  void ensure_initialized();
  void apply(const ConfigPoint& point);
  std::vector<std::int64_t> values_of(const ConfigPoint& point) const;
  void log_iteration(const ConfigPoint& point, double seconds,
                     const char* status, bool converged) const;

  std::unique_ptr<SearchStrategy> strategy_;
  TunerOptions opts_;
  std::vector<TunableParameter> params_;

  bool initialized_ = false;
  bool cycle_open_ = false;
  bool pending_applied_ = false;
  ConfigPoint pending_;
  Stopwatch stopwatch_;

  std::size_t iterations_ = 0;
  std::size_t retunes_ = 0;
  std::size_t rejected_samples_ = 0;
  std::vector<double> drift_samples_;
  std::vector<MeasurementRecord> history_;

  TunerLog* log_ = nullptr;  ///< not owned; see set_log()
  std::string log_name_;
};

}  // namespace kdtune
