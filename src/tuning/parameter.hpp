#pragma once

// A tunable parameter in the AtuneRT style: the client registers a *pointer*
// to a program variable together with its valid range; the tuner writes new
// values into that memory between measurement cycles (paper §III-A, fig. 1).
//
// Search strategies operate on a normalized integer *index space*
// [0, count-1] per parameter; linear parameters map index -> min + i*step,
// power-of-two parameters (the lazy builder's R) map index -> min << i.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace kdtune {

class TunableParameter {
 public:
  /// Linear grid: {min, min+step, ..., <= max}.
  static TunableParameter linear(std::int64_t* target, std::int64_t min,
                                 std::int64_t max, std::int64_t step = 1,
                                 std::string name = {});

  /// Power-of-two grid: {min, 2*min, 4*min, ..., <= max}; min must be a
  /// positive power of two and max >= min.
  static TunableParameter pow2(std::int64_t* target, std::int64_t min,
                               std::int64_t max, std::string name = {});

  const std::string& name() const noexcept { return name_; }
  std::int64_t min_value() const noexcept { return min_; }
  std::int64_t max_value() const noexcept { return max_; }

  /// Number of grid points (the size of this dimension of the search space).
  std::int64_t count() const noexcept { return count_; }

  /// Grid index -> parameter value.
  std::int64_t value_at(std::int64_t index) const;

  /// Parameter value -> nearest grid index.
  std::int64_t index_of(std::int64_t value) const noexcept;

  /// Continuous search coordinate -> clamped grid index.
  std::int64_t round_index(double x) const noexcept;

  /// Writes the value at `index` into the registered program variable.
  void apply(std::int64_t index) const { *target_ = value_at(index); }

  /// Current value of the registered variable.
  std::int64_t current() const noexcept { return *target_; }

 private:
  TunableParameter(std::int64_t* target, std::int64_t min, std::int64_t max,
                   std::int64_t step, bool is_pow2, std::string name);

  std::int64_t* target_;
  std::int64_t min_;
  std::int64_t max_;
  std::int64_t step_;
  bool pow2_;
  std::int64_t count_;
  std::string name_;
};

/// A point in the index space of a parameter set.
using ConfigPoint = std::vector<std::int64_t>;

/// Total number of configurations of a parameter set (product of counts).
std::uint64_t search_space_size(const std::vector<TunableParameter>& params);

}  // namespace kdtune
