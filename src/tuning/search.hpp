#pragma once

// Search strategy interface. The tuner drives a propose/report loop: the
// strategy proposes an index-space configuration, the client runs one
// measurement cycle with it, the measured time is reported back. AtuneRT's
// production strategy is random-sampling-seeded Nelder-Mead; exhaustive,
// random and fixed strategies exist as the baselines of the paper's Fig. 9.

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "tuning/parameter.hpp"

namespace kdtune {

class SearchStrategy {
 public:
  virtual ~SearchStrategy() = default;

  /// Geometry of the index space: one entry per parameter, the value is the
  /// number of grid points of that dimension. Called once before the loop.
  virtual void initialize(std::vector<std::int64_t> dimension_sizes) = 0;

  /// The next configuration to measure.
  virtual ConfigPoint propose() = 0;

  /// The measured execution time of the last proposed configuration.
  virtual void report(double seconds) = 0;

  /// True once the strategy has settled (it will keep proposing its best).
  virtual bool converged() const noexcept = 0;

  /// Best configuration / time observed so far.
  virtual const ConfigPoint& best() const noexcept = 0;
  virtual double best_time() const noexcept = 0;

  /// Restart the search (online re-tuning after drift), keeping the best
  /// known point as a seed where the strategy supports it.
  virtual void restart() = 0;

  /// Suggests a starting point (e.g. a cached configuration from a previous
  /// run). Called after initialize(), before the first propose(). Strategies
  /// that cannot use a seed may ignore it.
  virtual void seed(const ConfigPoint& /*point*/) {}
};

/// Options for the Nelder-Mead strategy.
struct NelderMeadOptions {
  /// Random samples drawn to seed the simplex (at least dims+1 are used).
  std::size_t random_samples = 8;
  /// Reflection / expansion / contraction / shrink coefficients.
  double alpha = 1.0;
  double gamma = 2.0;
  double rho = 0.5;
  double sigma = 0.5;
  /// Convergence: simplex collapses below this index-space diameter...
  double position_tolerance = 1.0;
  /// ...or the relative value spread falls below this. The defaults settle
  /// after a few dozen measurements, matching the paper's observation of a
  /// stable state "after just about 40 iterations" (SV-D3).
  double value_tolerance = 5e-3;
  /// Hard iteration cap (proposals) before forcing convergence.
  std::size_t max_evaluations = 120;
  std::uint64_t seed = 0x5EEDull;
};

std::unique_ptr<SearchStrategy> make_nelder_mead_search(NelderMeadOptions opts = {});

/// Uniform random search; converges after `budget` evaluations.
std::unique_ptr<SearchStrategy> make_random_search(std::size_t budget,
                                                   std::uint64_t seed = 0x5EEDull);

/// Full grid enumeration with an optional per-dimension stride (coarsening);
/// converges after one pass.
std::unique_ptr<SearchStrategy> make_exhaustive_search(
    std::vector<std::int64_t> strides = {});

/// Always proposes the given point (e.g. C_base); converged immediately.
std::unique_ptr<SearchStrategy> make_fixed_search(ConfigPoint point);

/// Steepest-descent hill climbing with `restarts` random restarts; converges
/// at a local minimum once the restart budget is spent. Baseline contrasting
/// Nelder-Mead's ~1 measurement per step with hill climbing's ~2*dims.
std::unique_ptr<SearchStrategy> make_hill_climb_search(
    std::size_t restarts = 2, std::uint64_t seed = 0x5EEDull);

/// Options for the simulated-annealing strategy.
struct AnnealingOptions {
  double initial_temperature = 0.6;
  double final_temperature = 0.01;
  double cooling = 0.95;   ///< per-evaluation temperature multiplier
  std::size_t max_evaluations = 200;
  std::uint64_t seed = 0x5EEDull;
};

/// Metropolis simulated annealing with temperature-scaled single-axis steps.
/// More noise-tolerant than greedy descent; slower to converge than the
/// simplex — the third point in the strategy-comparison ablation.
std::unique_ptr<SearchStrategy> make_annealing_search(AnnealingOptions opts = {});

}  // namespace kdtune
