#pragma once

// Timing and the small-sample statistics the evaluation harness reports
// (median, quartiles, MAD) — the paper's box plots are built from these.

#include <chrono>
#include <cstddef>
#include <span>
#include <vector>

namespace kdtune {

/// Monotonic stopwatch used by the tuner's measurement cycles.
class Stopwatch {
 public:
  void start() noexcept { begin_ = std::chrono::steady_clock::now(); }

  /// Seconds since start().
  double elapsed() const noexcept {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         begin_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point begin_ = std::chrono::steady_clock::now();
};

/// Summary statistics over a sample. Quantiles use linear interpolation.
struct SampleStats {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double q1 = 0.0;      ///< 25th percentile
  double median = 0.0;
  double q3 = 0.0;      ///< 75th percentile
  double max = 0.0;
  double mad = 0.0;     ///< median absolute deviation
};

SampleStats compute_stats(std::span<const double> values);

/// Quantile (0 <= q <= 1) with linear interpolation over a *sorted* sample.
double sorted_quantile(std::span<const double> sorted, double q) noexcept;

}  // namespace kdtune
