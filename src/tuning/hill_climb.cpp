// Steepest-descent hill climbing with random restarts: a classic local-search
// baseline for the strategy comparison. From the current point it measures
// every +-1 grid neighbor, moves to the best improving one, and stops at a
// local minimum; remaining restart budget re-seeds from a random point.
// Included to contrast with Nelder-Mead: it needs ~2d measurements *per step*
// where the simplex needs ~1, which matters online.

#include <algorithm>
#include <limits>

#include "geom/rng.hpp"
#include "tuning/search.hpp"

namespace kdtune {

namespace {

class HillClimbSearch final : public SearchStrategy {
 public:
  HillClimbSearch(std::size_t restarts, std::uint64_t seed)
      : restarts_left_(restarts), rng_(seed) {}

  void initialize(std::vector<std::int64_t> dimension_sizes) override {
    sizes_ = std::move(dimension_sizes);
    best_point_.assign(sizes_.size(), 0);
    best_time_ = std::numeric_limits<double>::infinity();
    begin_restart();
  }

  ConfigPoint propose() override {
    if (converged_) return best_point_;
    if (!have_center_value_) return center_;
    pending_ = neighbor(neighbor_index_);
    return pending_;
  }

  void report(double seconds) override {
    if (converged_) return;

    if (!have_center_value_) {
      center_value_ = seconds;
      have_center_value_ = true;
      track_best(center_, seconds);
      neighbor_index_ = 0;
      skip_invalid_neighbors();
      if (round_done()) finish_round();
      return;
    }

    track_best(pending_, seconds);
    if (seconds < best_neighbor_value_) {
      best_neighbor_value_ = seconds;
      best_neighbor_ = pending_;
    }
    ++neighbor_index_;
    skip_invalid_neighbors();
    if (round_done()) finish_round();
  }

  bool converged() const noexcept override { return converged_; }
  const ConfigPoint& best() const noexcept override { return best_point_; }
  double best_time() const noexcept override { return best_time_; }

  void restart() override {
    converged_ = false;
    begin_restart();
  }

 private:
  /// Neighbor k: dimension k/2, direction (k%2 ? +1 : -1).
  ConfigPoint neighbor(std::size_t k) const {
    ConfigPoint p = center_;
    const std::size_t d = k / 2;
    p[d] += (k % 2 == 1) ? 1 : -1;
    return p;
  }

  bool neighbor_valid(std::size_t k) const {
    const std::size_t d = k / 2;
    const std::int64_t v = center_[d] + ((k % 2 == 1) ? 1 : -1);
    return v >= 0 && v < sizes_[d];
  }

  void skip_invalid_neighbors() {
    while (!round_done() && !neighbor_valid(neighbor_index_)) {
      ++neighbor_index_;
    }
  }

  bool round_done() const { return neighbor_index_ >= 2 * sizes_.size(); }

  void finish_round() {
    if (best_neighbor_value_ < center_value_) {
      center_ = best_neighbor_;
      center_value_ = best_neighbor_value_;
      reset_round();
      return;
    }
    // Local minimum: restart or converge.
    if (restarts_left_ > 0) {
      --restarts_left_;
      begin_restart();
    } else {
      converged_ = true;
    }
  }

  void reset_round() {
    neighbor_index_ = 0;
    best_neighbor_value_ = std::numeric_limits<double>::infinity();
    skip_invalid_neighbors();
  }

  void begin_restart() {
    // Always re-seed randomly: restarting at the best known point would walk
    // straight back into the same local minimum.
    center_.resize(sizes_.size());
    for (std::size_t d = 0; d < sizes_.size(); ++d) {
      center_[d] = rng_.next_int(0, sizes_[d] - 1);
    }
    have_center_value_ = false;
    reset_round();
  }

  void track_best(const ConfigPoint& p, double t) {
    if (t < best_time_) {
      best_time_ = t;
      best_point_ = p;
    }
  }

  std::size_t restarts_left_;
  Rng rng_;
  std::vector<std::int64_t> sizes_;

  ConfigPoint center_;
  double center_value_ = 0.0;
  bool have_center_value_ = false;
  std::size_t neighbor_index_ = 0;
  ConfigPoint pending_;
  ConfigPoint best_neighbor_;
  double best_neighbor_value_ = std::numeric_limits<double>::infinity();

  bool converged_ = false;
  ConfigPoint best_point_;
  double best_time_ = std::numeric_limits<double>::infinity();
};

}  // namespace

std::unique_ptr<SearchStrategy> make_hill_climb_search(std::size_t restarts,
                                                       std::uint64_t seed) {
  return std::make_unique<HillClimbSearch>(restarts, seed);
}

}  // namespace kdtune
