#include "tuning/tuner.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "kdtree/query_backend.hpp"
#include "obs/trace.hpp"
#include "obs/tuner_log.hpp"

namespace kdtune {

Tuner::Tuner(std::unique_ptr<SearchStrategy> strategy, TunerOptions opts)
    : strategy_(strategy ? std::move(strategy) : make_nelder_mead_search()),
      opts_(opts) {}

Tuner::~Tuner() = default;

void Tuner::register_parameter(std::int64_t* var, std::int64_t min,
                               std::int64_t max, std::int64_t step,
                               std::string name) {
  if (initialized_) {
    throw std::logic_error("Tuner: cannot register parameters after start()");
  }
  params_.push_back(
      TunableParameter::linear(var, min, max, step, std::move(name)));
}

void Tuner::register_parameter_pow2(std::int64_t* var, std::int64_t min,
                                    std::int64_t max, std::string name) {
  if (initialized_) {
    throw std::logic_error("Tuner: cannot register parameters after start()");
  }
  params_.push_back(TunableParameter::pow2(var, min, max, std::move(name)));
}

void Tuner::warm_start(const std::vector<std::int64_t>& values) {
  if (values.size() != params_.size()) {
    throw std::invalid_argument("Tuner::warm_start: wrong value count");
  }
  ensure_initialized();
  ConfigPoint point(params_.size());
  for (std::size_t d = 0; d < params_.size(); ++d) {
    point[d] = params_[d].index_of(values[d]);
  }
  strategy_->seed(point);
}

void Tuner::ensure_initialized() {
  if (initialized_) return;
  if (params_.empty()) {
    throw std::logic_error("Tuner: no parameters registered");
  }
  std::vector<std::int64_t> sizes;
  sizes.reserve(params_.size());
  for (const TunableParameter& p : params_) sizes.push_back(p.count());
  strategy_->initialize(std::move(sizes));
  initialized_ = true;
}

void Tuner::apply(const ConfigPoint& point) {
  for (std::size_t d = 0; d < params_.size(); ++d) params_[d].apply(point[d]);
}

std::vector<std::int64_t> Tuner::values_of(const ConfigPoint& point) const {
  std::vector<std::int64_t> values(params_.size());
  for (std::size_t d = 0; d < params_.size(); ++d) {
    values[d] = params_[d].value_at(point[d]);
  }
  return values;
}

void Tuner::apply_next() {
  ensure_initialized();
  pending_ = strategy_->propose();
  apply(pending_);
  pending_applied_ = true;
}

void Tuner::start() {
  if (cycle_open_) throw std::logic_error("Tuner: start() without stop()");
  if (!pending_applied_) apply_next();
  cycle_open_ = true;
  stopwatch_.start();
}

void Tuner::stop() {
  if (!cycle_open_) throw std::logic_error("Tuner: stop() without start()");
  cycle_open_ = false;
  record(stopwatch_.elapsed());
}

void Tuner::record(double seconds) {
  if (!pending_applied_) {
    throw std::logic_error("Tuner: record() without apply_next()/start()");
  }
  if (!std::isfinite(seconds)) {
    // A NaN/Inf measurement (timer glitch, client-computed cost gone wrong)
    // must never reach the search: NaN is unordered, so it poisons both
    // compute_stats' sort in the drift detector and the simplex comparisons
    // in Nelder-Mead, silently corrupting the optimum. Drop the sample and
    // keep the pending configuration applied, so the next start()/record()
    // cycle re-measures the same point.
    ++rejected_samples_;
    log_iteration(pending_, seconds, "nan-rejected", strategy_->converged());
    trace_instant("tuner.nan_rejected", "tuner");
    return;
  }
  pending_applied_ = false;
  ++iterations_;

  const bool was_converged = strategy_->converged();
  if (opts_.keep_history) {
    history_.push_back({pending_, values_of(pending_), seconds, was_converged});
  }

  // "Accepted" means this measurement improved the strategy's best known
  // time (NelderMead and the baselines all track best on strict <; the
  // initial best is +inf, so the first sample is always accepted).
  const double best_before = strategy_->best_time();
  strategy_->report(seconds);
  log_iteration(pending_, seconds,
                seconds < best_before ? "accepted" : "rejected",
                was_converged);
  trace_counter("tuner.sample_ms", seconds * 1e3, "tuner");

  // Online drift detection: once converged, the tuner keeps measuring the
  // chosen configuration; a sustained slowdown vs. the best observed time of
  // that configuration re-opens the search (paper §V-D4: "these cases can in
  // practice be countered by repeating the optimization as needed").
  if (was_converged && opts_.drift_threshold > 0.0) {
    drift_samples_.push_back(seconds);
    if (drift_samples_.size() > opts_.drift_window) {
      drift_samples_.erase(drift_samples_.begin());
    }
    if (drift_samples_.size() == opts_.drift_window) {
      const SampleStats stats = compute_stats(drift_samples_);
      const double reference = strategy_->best_time();
      if (reference > 0.0 &&
          stats.median > reference * (1.0 + opts_.drift_threshold)) {
        retune();
      }
    }
  } else if (!was_converged) {
    drift_samples_.clear();
  }

  // Propose and immediately apply the next configuration so the client's
  // next frame already runs with it (fig. 4's "apply new configuration" on
  // Stop()).
  apply_next();
}

bool Tuner::converged() const noexcept {
  return initialized_ && strategy_->converged();
}

std::vector<std::int64_t> Tuner::best_values() const {
  if (!initialized_ || strategy_->best().empty()) {
    std::vector<std::int64_t> current(params_.size());
    for (std::size_t d = 0; d < params_.size(); ++d) {
      current[d] = params_[d].current();
    }
    return current;
  }
  return values_of(strategy_->best());
}

double Tuner::best_time() const noexcept { return strategy_->best_time(); }

void Tuner::retune() {
  ++retunes_;
  drift_samples_.clear();
  if (log_ != nullptr && initialized_ && !strategy_->best().empty()) {
    log_iteration(strategy_->best(), strategy_->best_time(), "retune",
                  /*converged=*/false);
  }
  trace_instant("tuner.retune", "tuner");
  strategy_->restart();
}

void Tuner::set_log(TunerLog* log, std::string name) {
  log_ = log;
  log_name_ = std::move(name);
}

void Tuner::log_iteration(const ConfigPoint& point, double seconds,
                          const char* status, bool converged) const {
  if (log_ == nullptr) return;
  TunerLog::Record rec;
  rec.tuner = log_name_;
  rec.iteration = iterations_;
  const std::vector<std::int64_t> values = values_of(point);
  rec.params.reserve(params_.size());
  for (std::size_t d = 0; d < params_.size(); ++d) {
    std::string name = params_[d].name();
    if (name == kQueryBackendParam) {
      // Decode the backend dimension into its layout name so the log line
      // is greppable without knowing the parameter grid.
      rec.backend = to_string(backend_from_int(values[d]));
    }
    if (name.empty()) name = "p" + std::to_string(d);
    rec.params.emplace_back(std::move(name), values[d]);
  }
  rec.seconds = seconds;
  rec.status = status;
  rec.phase = converged ? "converged" : "search";
  log_->log(rec);
}

}  // namespace kdtune
