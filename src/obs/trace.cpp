#include "obs/trace.hpp"

#include <array>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

namespace kdtune {
namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Names and categories are string literals at every call site, so the
// escaping here is belt-and-braces for the JSON grammar, not a general
// string escaper.
void append_json_string(std::string& out, const char* s) {
  out.push_back('"');
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
}

}  // namespace

// Per-thread event storage. Chunked so that growth never moves events
// already written: a writer appends lock-free into the current chunk and
// takes `growth_mutex` only to push a new chunk pointer (once per
// kChunkEvents events). `count` is the publication point — the writer
// release-stores it after the event payload is fully written, and readers
// acquire-load it before touching events, so a snapshot taken mid-run
// sees a consistent prefix.
//
// Single-writer invariant: only the owning thread appends. Readers
// (snapshot/to_json/event_count) take `growth_mutex` so chunk-vector
// growth cannot reallocate under their feet; the writer's unlocked reads
// of `chunks` are safe because the writer itself is the only mutator.
struct TraceRecorder::Buffer {
  static constexpr std::size_t kChunkEvents = 4096;
  struct Chunk {
    std::array<Event, kChunkEvents> events;
  };

  mutable std::mutex growth_mutex;
  std::vector<std::unique_ptr<Chunk>> chunks;
  std::atomic<std::size_t> count{0};
  int tid = 0;

  void push(const Event& event) {
    const std::size_t n = count.load(std::memory_order_relaxed);
    const std::size_t chunk_index = n / kChunkEvents;
    if (chunk_index == chunks.size()) {
      std::lock_guard<std::mutex> lock(growth_mutex);
      chunks.push_back(std::make_unique<Chunk>());
    }
    chunks[chunk_index]->events[n % kChunkEvents] = event;
    count.store(n + 1, std::memory_order_release);
  }

  std::vector<Event> copy_events() const {
    std::lock_guard<std::mutex> lock(growth_mutex);
    const std::size_t n = count.load(std::memory_order_acquire);
    std::vector<Event> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(chunks[i / kChunkEvents]->events[i % kChunkEvents]);
    }
    return out;
  }
};

TraceRecorder::TraceRecorder() : epoch_ns_(steady_now_ns()) {}

TraceRecorder& TraceRecorder::instance() noexcept {
  // Leaked on purpose: pool workers (including ThreadPool::global()'s)
  // may record during static destruction; a destroyed recorder would be
  // a use-after-free ordering lottery.
  static TraceRecorder* const recorder = new TraceRecorder();
  return *recorder;
}

TraceRecorder::Buffer& TraceRecorder::register_thread() {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  auto* buffer = new Buffer();  // immortal, owned by buffers_
  buffer->tid = static_cast<int>(buffers_.size()) + 1;
  buffers_.push_back(buffer);
  return *buffer;
}

TraceRecorder::Buffer& TraceRecorder::local_buffer() {
  // One registration per thread per process; the cached pointer stays
  // valid forever because buffers are never freed.
  thread_local Buffer* cached = nullptr;
  if (cached == nullptr) {
    cached = &register_thread();
  }
  return *cached;
}

void TraceRecorder::record(Phase phase, const char* name, const char* cat,
                           double value) {
  Event event;
  event.ts_ns = steady_now_ns() - epoch_ns_;
  event.name = name;
  event.cat = cat;
  event.value = value;
  event.phase = phase;
  local_buffer().push(event);
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  std::size_t total = 0;
  for (const Buffer* buffer : buffers_) {
    total += buffer->count.load(std::memory_order_acquire);
  }
  return total;
}

std::vector<std::pair<int, std::vector<TraceRecorder::Event>>>
TraceRecorder::snapshot() const {
  std::vector<Buffer*> buffers;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    buffers = buffers_;
  }
  std::vector<std::pair<int, std::vector<Event>>> out;
  out.reserve(buffers.size());
  for (const Buffer* buffer : buffers) {
    out.emplace_back(buffer->tid, buffer->copy_events());
  }
  return out;
}

std::string TraceRecorder::to_json() const {
  const auto threads = snapshot();
  std::string out;
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buf[96];
  for (const auto& [tid, events] : threads) {
    for (const Event& event : events) {
      if (!first) out.push_back(',');
      first = false;
      out += "{\"ph\":\"";
      switch (event.phase) {
        case Phase::kBegin:
          out.push_back('B');
          break;
        case Phase::kEnd:
          out.push_back('E');
          break;
        case Phase::kInstant:
          out += "i\",\"s\":\"t";  // instant scoped to its thread
          break;
        case Phase::kCounter:
          out.push_back('C');
          break;
      }
      out.push_back('"');
      if (event.name != nullptr) {
        out += ",\"name\":";
        append_json_string(out, event.name);
      }
      if (event.cat != nullptr) {
        out += ",\"cat\":";
        append_json_string(out, event.cat);
      }
      // Chrome trace timestamps are microseconds; keep ns resolution
      // via the fractional part.
      std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f,\"pid\":1,\"tid\":%d",
                    static_cast<double>(event.ts_ns) / 1000.0, tid);
      out += buf;
      if (event.phase == Phase::kCounter) {
        std::snprintf(buf, sizeof(buf), ",\"args\":{\"value\":%.17g}",
                      event.value);
        out += buf;
      }
      out.push_back('}');
    }
  }
  out += "]}";
  return out;
}

bool TraceRecorder::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << to_json() << '\n';
  return static_cast<bool>(out);
}

void TraceRecorder::reset() {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (Buffer* buffer : buffers_) {
    std::lock_guard<std::mutex> growth(buffer->growth_mutex);
    buffer->count.store(0, std::memory_order_release);
  }
}

}  // namespace kdtune
