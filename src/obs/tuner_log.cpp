#include "obs/tuner_log.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

namespace kdtune {
namespace {

// Param names and tuner names come from TunableParameter::name() and the
// callers' literals; escape the JSON specials anyway so a hostile name
// cannot produce an unparseable log.
void append_json_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
}

}  // namespace

bool TunerLog::open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  out_.open(path, std::ios::trunc);
  records_ = 0;
  return static_cast<bool>(out_);
}

bool TunerLog::is_open() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return out_.is_open();
}

void TunerLog::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (out_.is_open()) out_.close();
}

void TunerLog::log(const Record& record) {
  std::string line;
  line.reserve(160);
  line += "{\"tuner\":";
  append_json_string(line, record.tuner);
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"iter\":%llu",
                static_cast<unsigned long long>(record.iteration));
  line += buf;
  line += ",\"params\":{";
  bool first = true;
  for (const auto& [name, value] : record.params) {
    if (!first) line.push_back(',');
    first = false;
    append_json_string(line, name);
    std::snprintf(buf, sizeof(buf), ":%lld",
                  static_cast<long long>(value));
    line += buf;
  }
  line += "},\"seconds\":";
  if (std::isfinite(record.seconds)) {
    std::snprintf(buf, sizeof(buf), "%.*g",
                  std::numeric_limits<double>::max_digits10, record.seconds);
    line += buf;
  } else {
    line += "null";  // JSON has no NaN/Inf
  }
  line += ",\"status\":";
  append_json_string(line, record.status);
  line += ",\"phase\":";
  append_json_string(line, record.phase);
  if (!record.backend.empty()) {
    line += ",\"backend\":";
    append_json_string(line, record.backend);
  }
  line += "}\n";

  std::lock_guard<std::mutex> lock(mutex_);
  if (!out_.is_open()) return;
  out_ << line;
  out_.flush();
  ++records_;
}

std::uint64_t TunerLog::records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

}  // namespace kdtune
