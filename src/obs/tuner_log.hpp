#pragma once

// Tuner decision log: one JSONL line per tuner iteration, in the spirit
// of Karcher et al. — understanding an online tuner's behaviour requires
// the full (configuration, measurement, accept/reject) sequence, not
// just the final winner.
//
// Several tuners (core, serve, and every FrameTuner candidate) can share
// one TunerLog; the `tuner` field names the stream each line belongs to.
// Writes are mutex-guarded and flushed per line so a crash loses at most
// the line being written.
//
// Line schema (see docs/OBSERVABILITY.md):
//
//   {"tuner":"frame:in-place","iter":7,
//    "params":{"nested_threshold_log2":17,"task_depth":5},
//    "seconds":1.2345e-02,"status":"accepted","phase":"search"}
//
//   status: accepted | rejected | nan-rejected | retune
//   phase:  search | converged
//   seconds is written with max_digits10 (bit-exact round-trip); a
//   non-finite measurement (nan-rejected) is written as null.
//   When the iteration tunes a "query_backend" dimension, the line also
//   carries `"backend":"compact"|"wide4"|"wide8"|"bvh"` — the decoded
//   name of that dimension's value, so layout decisions are greppable
//   without knowing the parameter grid.

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace kdtune {

class TunerLog {
 public:
  struct Record {
    std::string tuner;  ///< stream name, e.g. "core", "serve", "frame:bfs"
    std::uint64_t iteration = 0;
    std::vector<std::pair<std::string, std::int64_t>> params;
    double seconds = 0.0;  ///< non-finite values are serialized as null
    std::string status;    ///< accepted | rejected | nan-rejected | retune
    std::string phase;     ///< search | converged
    /// Decoded query-backend name ("compact"/"wide4"/...) when this
    /// iteration tunes one; empty omits the field from the line.
    std::string backend;
  };

  TunerLog() = default;

  /// Opens (truncating) `path` for appending records. Returns false and
  /// leaves the log closed on failure.
  bool open(const std::string& path);
  bool is_open() const;
  void close();

  /// Appends one JSONL line and flushes. Thread-safe; a no-op when the
  /// log is not open.
  void log(const Record& record);

  /// Number of records written since open().
  std::uint64_t records() const;

 private:
  mutable std::mutex mutex_;
  std::ofstream out_;
  std::uint64_t records_ = 0;
};

}  // namespace kdtune
