#pragma once

// Run-wide tracing: a low-overhead recorder every layer reports into.
//
// The design goal is that instrumentation can stay compiled into release
// builds permanently:
//
//   * Disabled (the default): each probe is one relaxed atomic load and a
//     predictable branch — no allocation, no lock, no clock read.
//   * Enabled: ~20 ns per event.  Each thread appends to its own chunked
//     buffer; the only lock a writer ever takes is on chunk allocation
//     (once per 4096 events).  No event is ever dropped or overwritten.
//
// Events are the four Chrome trace-event phases the tooling needs:
//
//   TraceSpan span("build.bfs", "build");   // B/E duration pair (RAII)
//   trace_instant("frame.publish", "frame"); // i: a point in time
//   trace_counter("pool.queue_depth", n, "pool"); // C: a sampled value
//
// `TraceRecorder::write_json()` exports the whole run as Chrome
// trace-event JSON, loadable in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing.  See docs/OBSERVABILITY.md for the span taxonomy.
//
// Constraints (checked in debug, documented here for release):
//
//   * `name` and `cat` must point to static-storage strings (string
//     literals at every call site).  The recorder stores the pointers.
//   * `reset()` and `set_enabled(false)` are safe at any time, but spans
//     that are open across a reset() lose their B event; call reset()
//     only from quiescent points (tests do).
//   * The recorder singleton is intentionally leaked so worker threads
//     that outlive main()'s locals can still touch their buffers during
//     static destruction.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace kdtune {

class TraceRecorder {
 public:
  /// Chrome trace-event phases: duration begin/end, instant, counter.
  enum class Phase : std::uint8_t { kBegin, kEnd, kInstant, kCounter };

  struct Event {
    std::int64_t ts_ns = 0;      ///< nanoseconds since the recorder epoch
    const char* name = nullptr;  ///< static storage (string literal)
    const char* cat = nullptr;   ///< static storage (string literal)
    double value = 0.0;          ///< counter payload (kCounter only)
    Phase phase = Phase::kInstant;
  };

  /// The process-wide recorder. First call constructs it; never destroyed.
  static TraceRecorder& instance() noexcept;

  /// One relaxed load — the entire cost of a probe when tracing is off.
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Appends one event to the calling thread's buffer. Callers should
  /// check enabled() first (TraceSpan / the free helpers do).
  void record(Phase phase, const char* name, const char* cat,
              double value = 0.0);

  /// Total events recorded across all threads (acquire-snapshot).
  std::size_t event_count() const;

  /// Copies out every thread's events as (tid, events) pairs, in thread
  /// registration order. Events within a thread are in record order.
  std::vector<std::pair<int, std::vector<Event>>> snapshot() const;

  /// Serializes the whole run as Chrome trace-event JSON.
  std::string to_json() const;

  /// Writes to_json() to `path`. Returns false on I/O failure.
  bool write_json(const std::string& path) const;

  /// Discards all recorded events (buffers keep their capacity). Only
  /// call from quiescent points: concurrent writers would interleave
  /// with the clear, and open spans lose their B event.
  void reset();

 private:
  struct Buffer;

  TraceRecorder();
  ~TraceRecorder() = delete;  // immortal by design

  Buffer& local_buffer();
  Buffer& register_thread();

  std::atomic<bool> enabled_{false};
  std::int64_t epoch_ns_ = 0;  ///< steady_clock epoch for relative stamps

  mutable std::mutex registry_mutex_;
  std::vector<Buffer*> buffers_;  ///< owned; never freed (immortal)
};

/// RAII duration span. Cost when tracing is disabled: one relaxed load
/// and a branch in the constructor, one branch in the destructor.
///
/// The `armed_` flag makes B/E pairing unconditional: once the B event
/// is written, the destructor writes the E event even if tracing was
/// disabled in between, so exported traces always balance.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* cat = "kd") {
    TraceRecorder& recorder = TraceRecorder::instance();
    if (recorder.enabled()) {
      armed_ = true;
      recorder.record(TraceRecorder::Phase::kBegin, name, cat);
    }
  }
  ~TraceSpan() {
    if (armed_) {
      TraceRecorder::instance().record(TraceRecorder::Phase::kEnd, nullptr,
                                       nullptr);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  bool armed_ = false;
};

/// Marks a point in time (Chrome "i" event).
inline void trace_instant(const char* name, const char* cat = "kd") {
  TraceRecorder& recorder = TraceRecorder::instance();
  if (recorder.enabled()) {
    recorder.record(TraceRecorder::Phase::kInstant, name, cat);
  }
}

/// Samples a value (Chrome "C" event): queue depths, lag, batch sizes.
inline void trace_counter(const char* name, double value,
                          const char* cat = "kd") {
  TraceRecorder& recorder = TraceRecorder::instance();
  if (recorder.enabled()) {
    recorder.record(TraceRecorder::Phase::kCounter, name, cat, value);
  }
}

}  // namespace kdtune
